"""Command-line entry point for regenerating paper artefacts.

Usage::

    python -m repro.experiments.cli table2a
    python -m repro.experiments.cli table2b
    python -m repro.experiments.cli fig1 [--profile paper] [--trials 3]
    python -m repro.experiments.cli fig1 --plot      # ASCII charts
    python -m repro.experiments.cli datasets         # dataset summary
    python -m repro.experiments.cli all
    python -m repro.experiments.cli compare --planner adaptive --trace
    python -m repro.experiments.cli serve --port 8008  # network service
    python -m repro.experiments.cli ingest --tenant alice feed.dat
    python -m repro.experiments.cli store inspect --state-dir ./state
    python -m repro.experiments.cli store compact --state-dir ./state

Dataset scale is controlled by ``REPRO_FULL_SCALE=1`` (paper-exact N)
and the ε grid by ``--profile`` / ``REPRO_BENCH_PROFILE``.

``serve`` hands the remaining arguments to ``python -m repro.service``
(the multi-tenant release service) — see that module for its flags,
including ``--state-dir`` for durable ε ledgers.
``ingest`` streams a FIMI ``.dat`` transaction file (or stdin) into a
*running* service via ``POST /v1/ingest``, batched so each request
stays under the wire limit.
``store`` inspects or compacts a ``--state-dir`` offline (the service
need not be running); see ``docs/operations.md``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import FIGURES, TABLE2A_KS
from repro.experiments.figures import run_figure
from repro.experiments.tables import render_table2a, render_table2b

_ARTEFACTS = ["table2a", "table2b", *sorted(FIGURES)]


def main(argv: list[str] | None = None) -> int:
    """Run one artefact command (or ``serve``); returns an exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        # The service owns its flags (--host/--port/--tenants/…);
        # delegate before artefact parsing so the two CLIs stay
        # independent.
        from repro.service.__main__ import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["ingest"]:
        return _run_ingest(argv[1:])
    if argv[:1] == ["store"]:
        return _run_store(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli",
        description="Regenerate PrivBasis paper tables and figures.",
    )
    parser.add_argument(
        "artefact",
        choices=[*_ARTEFACTS, "datasets", "compare", "all"],
        help="which table/figure to regenerate "
             "('datasets' lists the registry; 'compare' runs a "
             "one-shot PB vs TF comparison)",
    )
    parser.add_argument(
        "--dataset", default="mushroom",
        help="dataset for 'compare' (default: mushroom)",
    )
    parser.add_argument(
        "--k", type=int, default=100, help="k for 'compare'"
    )
    parser.add_argument(
        "--epsilon", type=float, default=1.0,
        help="privacy budget for 'compare'",
    )
    parser.add_argument(
        "--tf-m", type=int, default=2,
        help="TF length cap for 'compare'",
    )
    parser.add_argument(
        "--planner", default="paper",
        help="budget planner for 'compare' (paper, adaptive, or "
             "custom — custom needs --alphas)",
    )
    parser.add_argument(
        "--alphas", default=None, metavar="A1,A2,A3",
        help="comma-separated alpha fractions for --planner custom",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the per-stage execution trace of the PrivBasis "
             "release in 'compare'",
    )
    parser.add_argument(
        "--profile",
        choices=["quick", "paper"],
        default=None,
        help="epsilon-grid profile (default: REPRO_BENCH_PROFILE or quick)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="repeated trials per point (default: 3, as in the paper)",
    )
    parser.add_argument(
        "--seed", type=int, default=20120827, help="root random seed"
    )
    parser.add_argument(
        "--tf-variant", choices=["laplace", "em"], default="laplace",
        help="TF selection variant",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="render figures as ASCII charts in addition to tables",
    )
    parser.add_argument(
        "--export-dir", default=None, metavar="DIR",
        help="also write each figure's series as CSV and JSON "
             "into DIR (created if missing)",
    )
    arguments = parser.parse_args(argv)

    if arguments.artefact == "datasets":
        _print_datasets()
        return 0
    if arguments.artefact == "compare":
        _run_compare(arguments)
        return 0

    targets = (
        _ARTEFACTS if arguments.artefact == "all" else [arguments.artefact]
    )
    for target in targets:
        started = time.time()
        if target == "table2a":
            print(render_table2a())
        elif target == "table2b":
            print(render_table2b())
        else:
            result = run_figure(
                target,
                profile=arguments.profile,
                trials=arguments.trials,
                seed=arguments.seed,
                tf_variant=arguments.tf_variant,
            )
            print(result.render())
            if arguments.plot:
                print()
                print(_plots_for(result))
            if arguments.export_dir:
                _export_figure(result, arguments.export_dir)
        print(f"[{target} done in {time.time() - started:.1f}s]\n")
    return 0


def _export_figure(result, directory: str) -> None:
    import os

    from repro.experiments.export import (
        figure_to_csv,
        figure_to_json,
        write_text,
    )

    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.figure_id)
    write_text(base + ".csv", figure_to_csv(result))
    write_text(base + ".json", figure_to_json(result))
    print(f"[exported {base}.csv and {base}.json]")


def _plots_for(result) -> str:
    from repro.experiments.plotting import plot_figure_panel

    fnr = plot_figure_panel(
        result.series,
        "fnr",
        f"{result.figure_id} ({result.dataset}) — FNR vs epsilon",
        y_max=1.0,
    )
    re = plot_figure_panel(
        result.series,
        "relative_error",
        f"{result.figure_id} ({result.dataset}) — relative error "
        "vs epsilon",
    )
    return fnr + "\n\n" + re


def _run_ingest(argv: list[str]) -> int:
    """Stream a FIMI transaction file into a running service.

    Reads ``FILE`` (one transaction per line, whitespace-separated
    item ids; ``-`` for stdin), splits it into ``--batch-size`` chunks
    and POSTs each to ``/v1/ingest`` over one keep-alive connection.
    Prints the dataset's final snapshot version and size.
    """
    import asyncio

    from repro.service.protocol import MAX_INGEST_TRANSACTIONS

    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli ingest",
        description="Append a FIMI .dat feed to a running service.",
    )
    parser.add_argument(
        "file", help="FIMI transaction file ('-' for stdin)"
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="service address")
    parser.add_argument("--port", type=int, default=8008,
                        help="service port")
    parser.add_argument(
        "--tenant", required=True,
        help="tenant id to ingest as (needs ingest permission)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1_000,
        help=f"transactions per request "
             f"(1..{MAX_INGEST_TRANSACTIONS})",
    )
    arguments = parser.parse_args(argv)
    if not 1 <= arguments.batch_size <= MAX_INGEST_TRANSACTIONS:
        parser.error(
            f"--batch-size must be in [1, {MAX_INGEST_TRANSACTIONS}]"
        )

    from repro.datasets.fimi import read_fimi
    from repro.service.client import ServiceClient

    database = (
        read_fimi(sys.stdin)
        if arguments.file == "-"
        else read_fimi(arguments.file)
    )
    rows = [list(transaction) for transaction in database]
    if not rows:
        print("nothing to ingest (empty feed)")
        return 0

    async def push() -> dict:
        async with ServiceClient(
            arguments.host, arguments.port, tenant=arguments.tenant
        ) as client:
            info: dict = {}
            for start in range(0, len(rows), arguments.batch_size):
                info = await client.ingest(
                    rows[start: start + arguments.batch_size]
                )
            return info

    info = asyncio.run(push())
    print(
        f"ingested {len(rows)} transactions into "
        f"{info['dataset']!r}: snapshot v{info['snapshot_version']}, "
        f"N={info['num_transactions']}"
    )
    return 0


def _run_store(argv: list[str]) -> int:
    """Inspect or compact a durable ``--state-dir`` offline.

    ``inspect`` prints per-tenant journaled ε, per-dataset recovered
    versions, stored-result counts, WAL sizes, and any torn records a
    previous crash left behind.  ``compact`` folds every WAL into its
    snapshot/checkpoint file (bounding the next restart's replay
    time) and reports the reclaimed bytes.  Neither command needs the
    service to be running; both work on a copied directory.
    """
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli store",
        description="Inspect or compact a durable state directory.",
    )
    parser.add_argument(
        "action", choices=["inspect", "compact"],
        help="'inspect' summarizes the store; 'compact' folds WALs "
             "into snapshots/checkpoints",
    )
    parser.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="the service's durable state directory",
    )
    arguments = parser.parse_args(argv)

    import os

    from repro.store.state import StateStore

    if not os.path.isdir(arguments.state_dir):
        print(f"no state directory at {arguments.state_dir!r}")
        return 1
    with StateStore(arguments.state_dir) as store:
        if arguments.action == "compact":
            summary = store.compact()
            ledger = summary["ledger"]
            results = summary["results"]
            print(
                f"ledger:  {ledger['tenants']} tenant(s), WAL "
                f"{ledger['wal_bytes_before']} -> "
                f"{ledger['wal_bytes_after']} bytes"
            )
            print(
                f"results: {results['results']} record(s), WAL "
                f"{results['wal_bytes_before']} -> "
                f"{results['wal_bytes_after']} bytes"
            )
            for entry in summary["datasets"]:
                print(
                    f"dataset {entry['dataset']}: v{entry['version']}, "
                    f"{entry['rows']} appended row(s), WAL "
                    f"{entry['wal_bytes_before']} -> "
                    f"{entry['wal_bytes_after']} bytes"
                )
            return 0
        view = store.inspect()
        print(f"state dir: {view['state_dir']} (fsync={view['fsync']})")
        ledger = view["ledger"]
        torn = ledger["torn_records"]
        print(
            f"ledger: {len(ledger['tenants'])} tenant(s), "
            f"{ledger['wal_bytes']} WAL bytes"
            + (f", {torn} torn record(s) dropped" if torn else "")
        )
        for tenant, entry in ledger["tenants"].items():
            print(
                f"  {tenant:<16} spent = {entry['spent']:.6g} "
                f"over {entry['debits']} debit(s)"
            )
        results = view["results"]
        print(
            f"results: {results['results']} stored release(s) "
            f"({results['wal_bytes']} WAL bytes)"
        )
        for dataset, count in sorted(results["by_dataset"].items()):
            print(f"  {dataset:<16} {count} release(s)")
        if view["datasets"]:
            print("dataset logs:")
            for name, entry in view["datasets"].items():
                checkpoint = (
                    "checkpointed" if entry["checkpointed"] else "WAL only"
                )
                print(
                    f"  {name:<16} v{entry['version']}, "
                    f"{entry['appended_rows']} appended row(s), "
                    f"{entry['wal_bytes']} WAL bytes ({checkpoint})"
                )
        else:
            print("dataset logs: none (no ingests recorded)")
    return 0


def _run_compare(arguments) -> None:
    """One-shot PB vs TF vs exact comparison on a registry dataset."""
    from repro.baselines.tf import tf_method
    from repro.core.privbasis import privbasis
    from repro.datasets.registry import cached_top_k, load_dataset
    from repro.fim.itemsets import format_itemset
    from repro.metrics.utility import evaluate_release

    planner_spec: dict = {"name": arguments.planner}
    if arguments.alphas is not None:
        planner_spec["alphas"] = [
            float(part) for part in arguments.alphas.split(",")
        ]
    database = load_dataset(arguments.dataset)
    k, epsilon = arguments.k, arguments.epsilon
    print(
        f"{arguments.dataset}: PB[{arguments.planner}] vs "
        f"TF(m={arguments.tf_m}) at "
        f"k = {k}, epsilon = {epsilon}, seed = {arguments.seed}"
    )
    truth = cached_top_k(database, k)

    pb = privbasis(
        database, k=k, epsilon=epsilon, rng=arguments.seed,
        planner=planner_spec,
    )
    tf = tf_method(
        database, k=k, epsilon=epsilon, m=arguments.tf_m,
        variant=arguments.tf_variant, rng=arguments.seed,
    )
    print(f"\n{'method':<12} {'FNR':>6} {'median RE':>10}")
    for label, release in (("PrivBasis", pb), ("TF", tf)):
        metrics = evaluate_release(release, database, truth)
        print(
            f"{label:<12} {metrics['fnr']:>6.3f} "
            f"{metrics['relative_error']:>10.4f}"
        )

    n = database.num_transactions
    print(f"\ntop 10 by PrivBasis (exact rank in parentheses):")
    exact_rank = {
        itemset: rank
        for rank, (itemset, _) in enumerate(truth, start=1)
    }
    for entry in pb.itemsets[:10]:
        rank = exact_rank.get(entry.itemset)
        rank_text = f"#{rank}" if rank else "not in exact top-k"
        print(
            f"  {format_itemset(entry.itemset):<28} "
            f"noisy f = {entry.noisy_frequency:.4f}  ({rank_text})"
        )

    if arguments.trace:
        print(f"\n{_format_trace(pb.trace)}")


def _format_trace(trace) -> str:
    """Render a release trace as an aligned per-stage table."""
    lines = [
        f"pipeline trace: planner = {trace.planner}, "
        f"lambda = {trace.lam}, branch = {trace.branch}",
        f"{'stage':<16} {'epsilon':>9} {'ms':>8}  queries",
    ]
    for stage in trace.stages:
        queries = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(stage.queries.items())
        )
        lines.append(
            f"{stage.name:<16} {stage.epsilon:>9.4f} "
            f"{stage.wall_time_s * 1000:>8.2f}  {queries or '-'}"
        )
    return "\n".join(lines)


def _print_datasets() -> None:
    from repro.datasets.registry import (
        dataset_names,
        full_scale_enabled,
        load_dataset,
    )

    scale = "paper-exact" if full_scale_enabled() else "quick"
    print(f"registry datasets (scale: {scale}; set REPRO_FULL_SCALE=1 "
          "for paper-exact N)")
    print()
    print(f"{'name':<12} {'N':>8} {'|I|':>8} {'avg |t|':>8} {'table k':>8}")
    for name in dataset_names():
        database = load_dataset(name)
        print(
            f"{name:<12} {database.num_transactions:>8} "
            f"{database.num_items:>8} "
            f"{database.avg_transaction_length:>8.1f} "
            f"{TABLE2A_KS[name]:>8}"
        )


if __name__ == "__main__":
    sys.exit(main())
