"""Table regeneration: paper Table 2(a) and Table 2(b)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.tf_analysis import TFFeasibility, tf_feasibility
from repro.datasets.registry import dataset_names, load_dataset
from repro.datasets.stats import DatasetStats, dataset_stats
from repro.experiments.config import TABLE2A_KS, TABLE2B_RUNS
from repro.experiments.reporting import render_table


def table2a(seed: int = 2012) -> List[DatasetStats]:
    """Table 2(a): dataset parameters and top-k structure."""
    rows: List[DatasetStats] = []
    for name in dataset_names():
        database = load_dataset(name, seed=seed)
        rows.append(dataset_stats(database, TABLE2A_KS[name], name=name))
    return rows


def render_table2a(rows: Optional[List[DatasetStats]] = None) -> str:
    """Text rendering matching the paper's Table 2(a) columns."""
    if rows is None:
        rows = table2a()
    headers = [
        "dataset", "N", "|I|", "avg |t|", "k", "lambda", "lambda2",
        "lambda3", "fk*N",
    ]
    return render_table(
        headers,
        [row.as_row() for row in rows],
        title="Table 2(a): dataset parameters",
    )


def table2b(epsilon: float = 1.0, rho: float = 0.9) -> List[TFFeasibility]:
    """Table 2(b): TF effectiveness (γ vs f_k) per dataset."""
    rows: List[TFFeasibility] = []
    for name in dataset_names():
        k, m = TABLE2B_RUNS[name]
        database = load_dataset(name)
        rows.append(
            tf_feasibility(
                database, k=k, m=m, epsilon=epsilon, rho=rho, dataset=name
            )
        )
    return rows


def render_table2b(rows: Optional[List[TFFeasibility]] = None) -> str:
    """Text rendering matching the paper's Table 2(b) columns."""
    if rows is None:
        rows = table2b()
    headers = [
        "dataset", "k", "fk*N", "m", "|U|", "gamma*N", "degenerate",
    ]
    body = [
        (
            row.dataset,
            row.k,
            round(row.fk_count),
            row.m,
            float(row.universe_size),
            round(row.gamma_count),
            "yes" if row.is_degenerate else "no",
        )
        for row in rows
    ]
    return render_table(
        headers,
        body,
        title=(
            "Table 2(b): effectiveness of the TF approach "
            f"(epsilon = {rows[0].epsilon:g}, rho = {rows[0].rho:g})"
        ),
    )
