"""Experiment harness: regenerate every paper table and figure."""

from repro.experiments.config import (
    FIGURES,
    TABLE2A_KS,
    TABLE2B_RUNS,
    FigureConfig,
    RunSpec,
    active_profile,
    epsilons_for,
    figure_config,
)
from repro.experiments.export import (
    figure_to_csv,
    figure_to_json,
    release_to_csv,
    series_to_csv,
    series_to_json,
)
from repro.experiments.figures import FigureResult, run_all_figures, run_figure
from repro.experiments.plotting import ascii_plot, plot_figure_panel
from repro.experiments.reporting import render_figure_panel, render_table
from repro.experiments.runner import (
    MethodSpec,
    SeriesResult,
    pb_spec,
    run_trials,
    sweep,
    tf_spec,
)
from repro.experiments.tables import (
    render_table2a,
    render_table2b,
    table2a,
    table2b,
)

__all__ = [
    "FIGURES",
    "FigureConfig",
    "FigureResult",
    "MethodSpec",
    "RunSpec",
    "SeriesResult",
    "TABLE2A_KS",
    "TABLE2B_RUNS",
    "active_profile",
    "ascii_plot",
    "epsilons_for",
    "figure_config",
    "figure_to_csv",
    "figure_to_json",
    "pb_spec",
    "plot_figure_panel",
    "release_to_csv",
    "render_figure_panel",
    "render_table",
    "render_table2a",
    "render_table2b",
    "run_all_figures",
    "run_figure",
    "run_trials",
    "series_to_csv",
    "series_to_json",
    "sweep",
    "table2a",
    "table2b",
    "tf_spec",
]
