"""Plain-text rendering of experiment results.

The benchmark harness runs headless, so figures are emitted as aligned
text series (one row per ε) rather than plots — the same rows one would
feed to gnuplot, which is what the paper's figures show.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.experiments.runner import SeriesResult


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Simple aligned text table."""
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(
            len(str(headers[column])),
            *(len(row[column]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            str(header).ljust(widths[column])
            for column, header in enumerate(headers)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                row[column].ljust(widths[column])
                for column in range(len(headers))
            )
        )
    return "\n".join(lines)


def render_figure_panel(
    series_list: Sequence[SeriesResult],
    metric: str,
    title: str,
) -> str:
    """One panel (FNR or RE) of a figure as a text table.

    Columns: ε, then ``mean ± stderr`` per series.
    """
    if metric not in ("fnr", "relative_error"):
        raise ValueError(f"unknown metric {metric!r}")
    headers = ["epsilon"] + [series.label for series in series_list]
    epsilons = series_list[0].epsilons if series_list else []
    rows: List[List[str]] = []
    for index, epsilon in enumerate(epsilons):
        row: List[str] = [f"{epsilon:.2f}"]
        for series in series_list:
            if metric == "fnr":
                mean = series.fnr_mean[index]
                err = series.fnr_stderr[index]
            else:
                mean = series.re_mean[index]
                err = series.re_stderr[index]
            row.append(_format_measurement(mean, err))
        rows.append(row)
    return render_table(headers, rows, title=title)


def _format_measurement(mean: float, stderr: float) -> str:
    if math.isnan(mean):
        return "n/a"
    return f"{mean:.3f}±{stderr:.3f}"


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "n/a"
        if cell and (abs(cell) >= 1e6 or abs(cell) < 1e-3):
            return f"{cell:.3g}"
        return f"{cell:.4g}"
    return str(cell)
