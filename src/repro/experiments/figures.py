"""Figure regeneration: one function per paper figure.

Each figure function returns a :class:`FigureResult` holding the PB and
TF series for every (k, m) run of that figure, plus a text rendering of
its two panels (FNR and relative error), mirroring the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.config import (
    FigureConfig,
    epsilons_for,
    figure_config,
)
from repro.experiments.reporting import render_figure_panel
from repro.experiments.runner import (
    SeriesResult,
    pb_spec,
    sweep,
    tf_spec,
)


@dataclass
class FigureResult:
    """All series of one figure plus metadata."""

    figure_id: str
    dataset: str
    description: str
    series: List[SeriesResult]

    def render(self) -> str:
        """The figure as two text panels, paper layout (a) FNR (b) RE."""
        panel_a = render_figure_panel(
            self.series,
            "fnr",
            f"{self.figure_id} ({self.dataset}) — (a) False Negative Rate",
        )
        panel_b = render_figure_panel(
            self.series,
            "relative_error",
            f"{self.figure_id} ({self.dataset}) — (b) Relative Error",
        )
        return panel_a + "\n\n" + panel_b


def run_figure(
    figure_id: str,
    profile: Optional[str] = None,
    trials: Optional[int] = None,
    seed: int = 20120827,
    tf_variant: str = "laplace",
) -> FigureResult:
    """Regenerate one paper figure (PB and TF curves for each k).

    Parameters
    ----------
    figure_id:
        ``"fig1"`` … ``"fig5"``.
    profile:
        ``"quick"`` (coarse ε grid) or ``"paper"`` (full grid); default
        from ``REPRO_BENCH_PROFILE``.
    trials:
        Override the number of repeated trials (paper: 3).
    tf_variant:
        Which TF selection variant to run (``"laplace"`` or ``"em"``).
    """
    config = figure_config(figure_id)
    database = load_dataset(config.dataset)
    epsilons = epsilons_for(config, profile)
    trial_count = trials if trials is not None else config.trials

    series: List[SeriesResult] = []
    for run in config.runs:
        series.append(
            sweep(
                database,
                pb_spec(run.k),
                run.k,
                epsilons,
                trials=trial_count,
                seed=seed,
            )
        )
    for run in config.runs:
        series.append(
            sweep(
                database,
                tf_spec(run.k, run.tf_m, variant=tf_variant),
                run.k,
                epsilons,
                trials=trial_count,
                seed=seed + 7,
            )
        )
    return FigureResult(
        figure_id=config.figure_id,
        dataset=config.dataset,
        description=config.description,
        series=series,
    )


def run_all_figures(
    profile: Optional[str] = None,
    trials: Optional[int] = None,
    seed: int = 20120827,
) -> Dict[str, FigureResult]:
    """Regenerate every paper figure; returns a dict keyed by id."""
    return {
        figure_id: run_figure(figure_id, profile=profile, trials=trials,
                              seed=seed)
        for figure_id in ("fig1", "fig2", "fig3", "fig4", "fig5")
    }
