"""Experiment definitions: one config per paper table/figure.

The grids mirror the paper's Section 5 exactly: which dataset, which k
values, which ε range, and which TF length cap m (the paper reports the
best-precision m per run in its figure captions; we use those values).

Two profiles control cost:

* ``paper`` — the full ε grids and 3 trials, at whatever dataset scale
  the registry provides (set ``REPRO_FULL_SCALE=1`` for paper-exact N).
* ``quick`` — a coarse ε grid, for CI and iteration.

Select via the ``REPRO_BENCH_PROFILE`` environment variable or the
``profile`` argument; default is ``quick``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ValidationError


@dataclass(frozen=True)
class RunSpec:
    """One (k, TF-m) pairing within a figure."""

    k: int
    tf_m: int


@dataclass(frozen=True)
class FigureConfig:
    """Everything needed to regenerate one paper figure."""

    figure_id: str
    dataset: str
    runs: Tuple[RunSpec, ...]
    epsilons: Tuple[float, ...]
    trials: int = 3
    description: str = ""

    def quick_epsilons(self) -> Tuple[float, ...]:
        """Coarse ε grid: endpoints plus the midpoint of the range."""
        lo, hi = self.epsilons[0], self.epsilons[-1]
        mid = round((lo + hi) / 2, 2)
        grid = sorted({lo, mid, hi})
        return tuple(grid)


def _grid(start: float, stop: float, step: float = 0.1) -> Tuple[float, ...]:
    values = []
    current = start
    while current <= stop + 1e-9:
        values.append(round(current, 2))
        current += step
    return tuple(values)


#: Paper figure configurations (Section 5.1).  TF's m values are the
#: per-curve best-precision values from the figure captions.
FIGURES: Dict[str, FigureConfig] = {
    "fig1": FigureConfig(
        figure_id="fig1",
        dataset="mushroom",
        runs=(RunSpec(k=50, tf_m=4), RunSpec(k=100, tf_m=2)),
        epsilons=_grid(0.1, 1.0),
        description="Mushroom: FNR and RE vs ε (small λ, single basis)",
    ),
    "fig2": FigureConfig(
        figure_id="fig2",
        dataset="pumsb_star",
        runs=(RunSpec(k=50, tf_m=4), RunSpec(k=150, tf_m=2)),
        epsilons=_grid(0.1, 1.0),
        description="Pumsb-star: FNR and RE vs ε (small λ, single basis)",
    ),
    "fig3": FigureConfig(
        figure_id="fig3",
        dataset="retail",
        runs=(RunSpec(k=50, tf_m=1), RunSpec(k=100, tf_m=1)),
        epsilons=_grid(0.2, 1.0),
        description="Retail: FNR and RE vs ε (larger λ, several bases)",
    ),
    "fig4": FigureConfig(
        figure_id="fig4",
        dataset="kosarak",
        runs=(
            RunSpec(k=100, tf_m=4),
            RunSpec(k=200, tf_m=2),
            RunSpec(k=300, tf_m=2),
            RunSpec(k=400, tf_m=2),
        ),
        epsilons=_grid(0.2, 1.0),
        description="Kosarak: FNR and RE vs ε (larger λ, several bases)",
    ),
    "fig5": FigureConfig(
        figure_id="fig5",
        dataset="aol",
        runs=(RunSpec(k=100, tf_m=1), RunSpec(k=200, tf_m=1)),
        epsilons=_grid(0.5, 1.0),
        description="AOL: FNR and RE vs ε (λ ≈ k, many small bases)",
    ),
}

#: Table 2(a) (k per dataset) and Table 2(b) (k, m per dataset).
TABLE2A_KS: Dict[str, int] = {
    "retail": 100,
    "mushroom": 100,
    "pumsb_star": 200,
    "kosarak": 200,
    "aol": 200,
}

TABLE2B_RUNS: Dict[str, Tuple[int, int]] = {
    "retail": (100, 1),
    "mushroom": (100, 2),
    "pumsb_star": (200, 3),
    "kosarak": (200, 2),
    "aol": (200, 1),
}


def active_profile(profile: str | None = None) -> str:
    """Resolve the benchmark profile (argument > env > default)."""
    resolved = profile or os.environ.get("REPRO_BENCH_PROFILE", "quick")
    resolved = resolved.strip().lower()
    if resolved not in ("quick", "paper"):
        raise ValidationError(
            f"profile must be 'quick' or 'paper', got {resolved!r}"
        )
    return resolved


def figure_config(figure_id: str) -> FigureConfig:
    """Look up a figure configuration by id (e.g. ``"fig1"``)."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise ValidationError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None


def epsilons_for(config: FigureConfig, profile: str | None = None):
    """The ε grid for a figure under the active profile."""
    if active_profile(profile) == "paper":
        return config.epsilons
    return config.quick_epsilons()
