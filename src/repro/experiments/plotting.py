"""ASCII line plots for figure series (no plotting dependencies).

The paper's figures are ε-vs-metric line charts with 2–8 series each.
:func:`ascii_plot` renders the same data as a terminal chart so that
``python -m repro.experiments.cli figN --plot`` (and EXPERIMENTS.md)
can show curve *shapes*, not just tables: who wins, how fast curves
fall with ε, and where they flatten.

Rendering model: a fixed character grid, x mapped linearly over the ε
range, y linearly over [0, y_max]; each series draws its points with
its own glyph, later series over earlier ones.  Collisions are
resolved in favour of the later series (PB series are passed last by
the figure renderer so the headline curves stay visible).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox*#@+%&"


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    y_max: Optional[float] = None,
    title: str = "",
    x_label: str = "epsilon",
) -> str:
    """Render series as an ASCII chart.

    Parameters
    ----------
    series:
        List of ``(label, xs, ys)``; all xs must be positive and each
        ``len(xs) == len(ys)``.  NaN ys are skipped.
    width, height:
        Plot-area size in characters (axes and legend are extra).
    y_max:
        Fixed y-axis top; default is the max finite y across series
        (at least a small positive value so flat-zero data renders).

    Returns
    -------
    The chart as a multi-line string: title, y-axis labels, plot grid,
    x-axis, and a legend mapping glyphs to labels.
    """
    if not series:
        raise ValidationError("need at least one series to plot")
    if width < 16 or height < 4:
        raise ValidationError(
            f"plot area too small: {width}x{height} (min 16x4)"
        )
    if len(series) > len(SERIES_GLYPHS):
        raise ValidationError(
            f"at most {len(SERIES_GLYPHS)} series supported, "
            f"got {len(series)}"
        )
    for label, xs, ys in series:
        if len(xs) != len(ys):
            raise ValidationError(
                f"series {label!r}: {len(xs)} xs vs {len(ys)} ys"
            )
        if not xs:
            raise ValidationError(f"series {label!r} is empty")

    all_x = [x for _, xs, _ in series for x in xs]
    x_min, x_max = min(all_x), max(all_x)
    finite_y = [
        y
        for _, _, ys in series
        for y in ys
        if not math.isnan(y) and not math.isinf(y)
    ]
    top = y_max if y_max is not None else max(finite_y, default=0.0)
    if top <= 0:
        top = 1e-9

    grid = [[" "] * width for _ in range(height)]

    def column(x: float) -> int:
        if x_max == x_min:
            return width // 2
        fraction = (x - x_min) / (x_max - x_min)
        return min(width - 1, max(0, round(fraction * (width - 1))))

    def row(y: float) -> int:
        fraction = min(1.0, max(0.0, y / top))
        return min(
            height - 1, max(0, (height - 1) - round(fraction * (height - 1)))
        )

    for index, (label, xs, ys) in enumerate(series):
        glyph = SERIES_GLYPHS[index]
        previous: Optional[Tuple[int, int]] = None
        for x, y in zip(xs, ys):
            if math.isnan(y) or math.isinf(y):
                previous = None
                continue
            c, r = column(x), row(y)
            if previous is not None:
                _draw_segment(grid, previous, (c, r), glyph)
            grid[r][c] = glyph
            previous = (c, r)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        len(_fmt(top)), len(_fmt(top / 2)), len(_fmt(0.0))
    )
    for r in range(height):
        if r == 0:
            axis_label = _fmt(top).rjust(label_width)
        elif r == height - 1:
            axis_label = _fmt(0.0).rjust(label_width)
        elif r == (height - 1) // 2:
            axis_label = _fmt(top / 2).rjust(label_width)
        else:
            axis_label = " " * label_width
        lines.append(f"{axis_label} |{''.join(grid[r])}|")
    x_axis = "-" * width
    lines.append(f"{' ' * label_width} +{x_axis}+")
    left = _fmt(x_min)
    right = _fmt(x_max)
    middle = x_label.center(width - len(left) - len(right))
    lines.append(f"{' ' * label_width}  {left}{middle}{right}")
    legend = "   ".join(
        f"{SERIES_GLYPHS[index]} {label}"
        for index, (label, _, _) in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def plot_figure_panel(
    figure_series,
    metric: str,
    title: str,
    width: int = 64,
    height: int = 16,
    y_max: Optional[float] = None,
) -> str:
    """Chart one panel (FNR or RE) of a figure's SeriesResult list.

    TF series are drawn first and PB series last so PB glyphs win
    collisions, matching the paper's visual emphasis.
    """
    if metric not in ("fnr", "relative_error"):
        raise ValidationError(
            f"metric must be 'fnr' or 'relative_error', got {metric!r}"
        )
    attribute = "fnr_mean" if metric == "fnr" else "re_mean"
    ordered = sorted(
        figure_series,
        key=lambda item: item.label.startswith("PB"),
    )
    data = [
        (result.label, result.epsilons, getattr(result, attribute))
        for result in ordered
    ]
    return ascii_plot(
        data, width=width, height=height, y_max=y_max, title=title
    )


def _draw_segment(grid, start, end, glyph) -> None:
    """Light linear interpolation between consecutive points with '.'
    (only on blank cells, so real data points stay visible)."""
    (c0, r0), (c1, r1) = start, end
    steps = max(abs(c1 - c0), abs(r1 - r0))
    if steps <= 1:
        return
    for step in range(1, steps):
        c = round(c0 + (c1 - c0) * step / steps)
        r = round(r0 + (r1 - r0) * step / steps)
        if grid[r][c] == " ":
            grid[r][c] = "."


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2g}"
    return f"{value:.2g}"
