"""Cached serving sessions: many releases over one database.

A production deployment of PrivBasis answers *many* ``(k, ε)``
release requests against the same database — different tenants,
different budgets, retries.  Only the noise and the exponential-
mechanism draws differ between releases; all dataset-derived state
(item supports, bitmap pools, bin histograms, the exact top-k oracle
behind GetLambda's θ) is reusable.  :class:`PrivBasisSession` owns one
database + one :class:`~repro.engine.cache.CachedBackend` and exposes
``release`` / ``release_batch``, so the first release pays the cold
cost and subsequent releases run against warm caches.

Privacy semantics: every release draws fresh randomness and is ε-DP on
its own (caching only reuses exact, non-private intermediates).
Releases over the same data still *compose* — the session keeps a
cumulative ledger and, when ``epsilon_limit`` is set, refuses releases
that would exceed it (sequential composition across the session's
lifetime).  When no limit is set the ledger is informational, which
matches the common deployment where an external budget service owns
the global accounting.

Streaming: the session is **snapshot-aware**.  It can be fed a live
:class:`~repro.datasets.stream.TransactionLog` (or raw transaction
batches via :meth:`PrivBasisSession.ingest`), advancing its warm
backend incrementally instead of rebuilding, and every release pins
and reports the snapshot version it was computed on
(``result.snapshot_version``).  The ε ledger is deliberately
*unchanged* by ingestion — DP accounting composes across all releases
by the same principal regardless of which snapshot each one saw; see
``docs/streaming.md`` for the argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.datasets.stream import TransactionLog
from repro.datasets.transactions import TransactionDatabase
from repro.engine.backend import CountingBackend, resolve_backend
from repro.engine.cache import CachedBackend
from repro.errors import BudgetExceededError, ValidationError

__all__ = ["PrivBasisSession", "ReleaseRequest"]

#: A release request for :meth:`PrivBasisSession.release_batch`: either
#: a ``(k, epsilon)`` pair or a mapping of :meth:`release` keyword
#: arguments (``{"k": 50, "epsilon": 1.0, "noise": "geometric"}``).
ReleaseRequest = Union[Tuple[int, float], Mapping[str, object]]

#: Dataset key the session's own reuse index files entries under (a
#: session serves exactly one dataset, so the scope is a constant).
_REUSE_SCOPE = "session"


class PrivBasisSession:
    """One database + one warm backend, serving repeated releases.

    Parameters
    ----------
    database:
        The transaction database (or a ready
        :class:`~repro.engine.backend.CountingBackend` over it).  A
        :class:`~repro.datasets.stream.TransactionLog` is also
        accepted: the session starts on the log's latest snapshot and
        stays attached, so :meth:`ingest` appends through the log and
        :meth:`sync` catches up with appends made by other writers.
    backend:
        Optional explicit backend; defaults to
        :class:`~repro.engine.bitmap.BitmapBackend`.  It is wrapped in
        a :class:`~repro.engine.cache.CachedBackend` unless it already
        is one.
    epsilon_limit:
        Optional cap on the *cumulative* ε spent by this session
        (sequential composition across releases).  ``None`` means
        unlimited (accounting is still recorded).
    rng:
        Session-level randomness; per-release ``rng`` overrides it.
        All releases without an explicit seed draw from this one
        stream, so a seeded session is reproducible end to end.
    reuse:
        Opt into the cross-release reuse plane
        (:mod:`repro.pipeline.reuse`): a plain ``(k', ε')`` release
        request strictly dominated by an earlier release on the same
        snapshot (``k' ≤ k``, ``ε' ≤ ε``, not byte-identical) is
        answered by truncating the stored payload — no data access,
        no ledger debit.  Off by default: a bare session keeps the
        one-release-one-mechanism-run semantics; the service turns it
        on per tenant (its reuse scope is the tenant, not this
        shared session).
    """

    def __init__(
        self,
        database,
        backend: Optional[CountingBackend] = None,
        epsilon_limit: Optional[float] = None,
        rng=None,
        reuse: bool = False,
    ) -> None:
        from repro.dp.rng import ensure_rng
        from repro.pipeline.planner import TraceHistory
        from repro.pipeline.reuse import ReuseIndex

        self._log: Optional[TransactionLog] = None
        self._snapshot_version = 0
        if isinstance(database, TransactionLog):
            self._log = database
            pinned = database.snapshot()
            database = pinned.database
            self._snapshot_version = pinned.version
        inner = resolve_backend(database, backend)
        self._backend: CachedBackend = (
            inner
            if isinstance(inner, CachedBackend)
            else CachedBackend(inner)
        )
        if epsilon_limit is not None and not (epsilon_limit > 0):
            raise ValidationError(
                f"epsilon_limit must be positive, got {epsilon_limit}"
            )
        self._epsilon_limit = epsilon_limit
        self._epsilon_spent = 0.0
        self._num_releases = 0
        self._rng = ensure_rng(rng)
        self._reuse_index = ReuseIndex() if reuse else None
        self._reuse_hits = 0
        self._reuse_epsilon_saved = 0.0
        #: Which branch served past releases; feeds bound AutoPlanners.
        self._trace_history = TraceHistory()

    # -- introspection --------------------------------------------------
    @property
    def database(self) -> TransactionDatabase:
        return self._backend.database

    @property
    def backend(self) -> CachedBackend:
        """The memoizing backend all releases share."""
        return self._backend

    @property
    def epsilon_spent(self) -> float:
        """Cumulative ε consumed by this session's releases."""
        return self._epsilon_spent

    @property
    def epsilon_limit(self) -> Optional[float]:
        return self._epsilon_limit

    @property
    def num_releases(self) -> int:
        return self._num_releases

    @property
    def snapshot_version(self) -> int:
        """The data snapshot all new releases are computed on."""
        return self._snapshot_version

    @property
    def log(self) -> Optional[TransactionLog]:
        """The attached transaction log, if the session follows one."""
        return self._log

    @property
    def reuse_enabled(self) -> bool:
        """Whether the cross-release reuse plane is on."""
        return self._reuse_index is not None

    @property
    def reuse_hits(self) -> int:
        """Releases served by post-processing a stored release."""
        return self._reuse_hits

    @property
    def trace_history(self):
        """Branch telemetry of past releases (AutoPlanner input)."""
        return self._trace_history

    # -- streaming ingestion --------------------------------------------
    def ingest(self, transactions) -> int:
        """Append a batch of transactions; returns the new version.

        ``transactions`` is an iterable of transactions (each an
        iterable of item ids within the current vocabulary) or a ready
        :class:`TransactionDatabase` delta.  The warm backend advances
        incrementally — bitmap rows are extended, tail shards grow,
        and the caching layer performs its snapshot-scoped
        invalidation — so ingestion costs O(Δ), not a cold rebuild.

        No privacy budget is consumed: ingestion only changes which
        exact data later mechanisms read.  Already-published releases
        keep the (now historical) snapshot version they pinned.
        """
        if self._log is not None:
            self._log.append(transactions)
            return self.sync()
        if isinstance(transactions, TransactionDatabase):
            delta = transactions
        else:
            delta = TransactionDatabase(
                transactions, num_items=self.database.num_items
            )
        if delta.num_transactions == 0:
            raise ValidationError(
                "cannot ingest an empty batch (versions must advance "
                "the data); skip the call instead"
            )
        self._backend.extend(delta)
        self._snapshot_version += 1
        self._invalidate_reuse()
        return self._snapshot_version

    def sync(self) -> int:
        """Catch up with appends made to the attached log; returns the
        version now served.

        A no-op (returning the current version) when the session is
        not attached to a :class:`TransactionLog` or is already
        current.  One backend ``extend`` covers any number of missed
        log versions.
        """
        if self._log is None:
            return self._snapshot_version
        target = self._log.version
        if target > self._snapshot_version:
            delta = self._log.delta(self._snapshot_version, target)
            self._backend.extend(delta)
            self._snapshot_version = target
            self._invalidate_reuse()
        return self._snapshot_version

    def restore(
        self,
        delta=None,
        snapshot_version: Optional[int] = None,
        num_releases: Optional[int] = None,
        epsilon_spent: Optional[float] = None,
    ) -> int:
        """Warm-restore hook for a durable state store; returns the
        version now served.

        A restarted service rebuilds its base session from the
        dataset loader and then calls this once per dataset to bring
        it back to the pre-crash state recorded in
        :class:`repro.store.state.StateStore`:

        * ``delta`` — every transaction ingested since the base
          snapshot (flattened across batches), applied through the
          warm backend's O(Δ) ``extend`` path;
        * ``snapshot_version`` — the version the store recorded; set
          directly rather than incremented, because one flattened
          ``extend`` replays what was originally many versioned
          batches and releases must pin the *original* numbering;
        * ``num_releases`` / ``epsilon_spent`` — the session's
          informational serving counters (``/metrics`` continuity;
          the authoritative per-tenant accounting lives in the
          journaled tenant ledgers, not here).

        Unlike :meth:`ingest`, nothing here re-journals: the state
        being applied came *from* the journal.  Restoring is only
        valid forward — a ``snapshot_version`` behind the current one
        is rejected rather than silently rewinding the data.
        """
        if self._log is not None and delta is not None:
            raise ValidationError(
                "cannot restore a delta into a session attached to a "
                "TransactionLog; restore the log and sync() instead"
            )
        if delta is not None:
            if not isinstance(delta, TransactionDatabase):
                delta = TransactionDatabase(
                    delta, num_items=self.database.num_items
                )
            if delta.num_transactions:
                self._backend.extend(delta)
        if snapshot_version is not None:
            if int(snapshot_version) < self._snapshot_version:
                raise ValidationError(
                    f"cannot restore snapshot_version "
                    f"{snapshot_version} behind current "
                    f"{self._snapshot_version}"
                )
            if int(snapshot_version) > self._snapshot_version:
                self._snapshot_version = int(snapshot_version)
                self._invalidate_reuse()
        if num_releases is not None:
            if int(num_releases) < 0:
                raise ValidationError(
                    f"num_releases must be >= 0, got {num_releases!r}"
                )
            self._num_releases = int(num_releases)
        if epsilon_spent is not None:
            if not (float(epsilon_spent) >= 0):
                raise ValidationError(
                    f"epsilon_spent must be >= 0, got {epsilon_spent!r}"
                )
            self._epsilon_spent = float(epsilon_spent)
        return self._snapshot_version

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters of the shared cache (telemetry)."""
        return self._backend.cache_info()

    def stats(self) -> Dict[str, object]:
        """One JSON-serializable bundle of ledger + cache telemetry.

        This is the introspection surface :mod:`repro.service` polls
        for its ``/metrics`` endpoint: the session-level ε ledger
        (cumulative across every tenant sharing this session), the
        per-kind cache hit/miss counters, and — when the inner backend
        exposes it — the number of bitmap pools built, which is the
        signal the coalescing tests use to prove cold-start work
        happened at most once.
        """
        inner = self._backend.inner
        stats: Dict[str, object] = {
            "num_releases": self._num_releases,
            "epsilon_spent": self._epsilon_spent,
            "epsilon_limit": self._epsilon_limit,
            "snapshot_version": self._snapshot_version,
            "num_transactions": self.database.num_transactions,
            "cache": self._backend.cache_info(),
        }
        pools_built = getattr(inner, "pools_built", None)
        if pools_built is not None:
            stats["pools_built"] = int(pools_built)
        if self._reuse_index is not None:
            stats["reuse"] = {
                "hits": self._reuse_hits,
                "epsilon_saved": self._reuse_epsilon_saved,
                **self._reuse_index.stats(),
            }
        data_plane_stats = getattr(inner, "data_plane_stats", None)
        if callable(data_plane_stats):
            # Out-of-core (mmap) backends report residency telemetry:
            # spilled vs resident bytes, budget, cached shard count.
            stats["data_plane"] = data_plane_stats()
        return stats

    def warm_up(self) -> None:
        """Pay the dataset-independent part of the cold-start cost now.

        Computes the item-support vector through the caching backend so
        the first real release skips that scan.  Deliberately touches
        nothing release-specific (no top-k oracle, no bins): those
        depend on ``k`` and the private basis, which are unknown until
        a request arrives.  Reads only exact data — no privacy budget
        is consumed.
        """
        self._backend.item_supports()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release backend-owned OS resources (idempotent).

        Forwards to the backend's :meth:`~repro.engine.backend
        .CountingBackend.close` — which tears down worker pools and
        shared-memory segments for a process-mode
        :class:`~repro.engine.sharded.ShardedBackend` and is a no-op
        for in-process backends.  The session's ledger and counters
        survive; a thread-mode backend stays queryable.
        """
        self._backend.close()

    def __enter__(self) -> "PrivBasisSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- serving --------------------------------------------------------
    def _invalidate_reuse(self) -> None:
        """Drop stored releases pinned to now-stale snapshots."""
        if self._reuse_index is not None:
            self._reuse_index.invalidate_before(
                _REUSE_SCOPE, self._snapshot_version
            )

    def _bind_planner(self, planner):
        """Resolve ``planner`` and bind unbound AutoPlanners to this
        session's trace history (the per-dataset telemetry the auto
        policy conditions on)."""
        if planner is None:
            return None
        from repro.pipeline.planner import AutoPlanner, resolve_planner

        planner = resolve_planner(planner)
        if isinstance(planner, AutoPlanner) and planner.history is None:
            planner.bind(self._trace_history)
        return planner

    def _serve_reused(self, k, epsilon):
        """A reuse-plane answer for ``(k, ε)``, or ``None`` on a miss.

        Misses include malformed parameters — those fall through to
        the fresh path so validation errors are raised in one place.
        """
        from repro.pipeline.reuse import (
            result_from_payload,
            top_k_truncate,
        )

        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            return None
        if (
            isinstance(epsilon, bool)
            or not isinstance(epsilon, (int, float))
            or not (float(epsilon) > 0)
        ):
            return None
        decision = self._reuse_index.lookup(
            _REUSE_SCOPE, self._snapshot_version, k, float(epsilon)
        )
        if not decision.hit:
            return None
        source = decision.source
        truncated = top_k_truncate(source.payload, k, float(epsilon))
        result = result_from_payload(
            truncated,
            snapshot_version=source.snapshot_version,
            reuse={
                "hit": True,
                "source": source.describe(),
                "epsilon_charged": 0.0,
                "epsilon_saved": float(epsilon),
            },
        )
        self._reuse_hits += 1
        self._reuse_epsilon_saved += float(epsilon)
        return result

    def _charge(self, epsilon: float) -> None:
        if not (epsilon > 0):
            raise ValidationError(
                f"epsilon must be positive, got {epsilon}"
            )
        if self._epsilon_limit is not None:
            remaining = self._epsilon_limit - self._epsilon_spent
            if epsilon > remaining * (1 + 1e-9):
                raise BudgetExceededError(epsilon, max(remaining, 0.0))

    def release(
        self, k: int, epsilon: float, rng=None, planner=None, **kwargs
    ):
        """One ε-DP top-``k`` release against the warm backend.

        Accepts every keyword :func:`repro.core.privbasis.privbasis`
        accepts (``eta``, ``alphas``, ``noise``, …) plus ``planner`` —
        a budget-planner name, spec mapping, or
        :class:`~repro.pipeline.planner.BudgetPlanner` — and returns a
        :class:`~repro.core.result.PrivBasisResult` whose ``.trace``
        reports per-stage ε, wall time, and backend query counts.
        Fresh noise is drawn per call; only exact intermediates are
        reused.

        The release pins the session's current snapshot version and
        reports it on ``result.snapshot_version``, so even under a
        live ingest feed every published output is attributable to one
        exact data state.  (Callers interleaving ``ingest`` from other
        threads must serialize against releases, as the service's
        per-dataset lock does.)

        With ``reuse=True``, a plain request (no planner, no keyword
        overrides) strictly dominated by a stored release on the
        current snapshot is answered by post-processing that release:
        the result carries ``.reuse`` provenance, no data is touched,
        and the ledger debits nothing (see
        :mod:`repro.pipeline.reuse`).
        """
        from repro.pipeline.run import planned_release

        planner = self._bind_planner(planner)
        if self._reuse_index is not None and planner is None and not kwargs:
            reused = self._serve_reused(k, epsilon)
            if reused is not None:
                return reused
        self._charge(epsilon)
        pinned_version = self._snapshot_version
        result = planned_release(
            self.database,
            k=k,
            epsilon=epsilon,
            planner=planner,
            backend=self._backend,
            rng=self._rng if rng is None else rng,
            **kwargs,
        )
        result.snapshot_version = pinned_version
        self._epsilon_spent += epsilon
        self._num_releases += 1
        self._trace_history.observe(result.trace)
        if self._reuse_index is not None:
            from repro.pipeline.reuse import payload_from_result

            self._reuse_index.add(
                _REUSE_SCOPE, pinned_version, payload_from_result(result)
            )
        return result

    def release_batch(self, requests: Iterable[ReleaseRequest]) -> List:
        """Serve many releases in one call (multi-tenant batching).

        Each request is a ``(k, epsilon)`` pair or a mapping of
        :meth:`release` keywords.  The whole batch is charged against
        ``epsilon_limit`` up front, so a batch either fits entirely or
        fails before any noise is drawn (no partial batches to refund).
        """
        normalized: List[Mapping[str, object]] = []
        for request in requests:
            if isinstance(request, Mapping):
                if "k" not in request or "epsilon" not in request:
                    raise ValidationError(
                        f"release request needs 'k' and 'epsilon': "
                        f"{request!r}"
                    )
                normalized.append(dict(request))
            else:
                k, epsilon = request
                normalized.append({"k": k, "epsilon": epsilon})
        if not normalized:
            return []
        # Validate every request before charging or drawing noise, so
        # the all-or-nothing promise holds: a bad epsilon or k in the
        # middle of a batch must not leave earlier releases spent.
        for request in normalized:
            if not (float(request["epsilon"]) > 0):
                raise ValidationError(
                    f"epsilon must be positive, got "
                    f"{request['epsilon']!r}"
                )
            if int(request["k"]) < 1:
                raise ValidationError(
                    f"k must be >= 1, got {request['k']!r}"
                )
        total = sum(float(request["epsilon"]) for request in normalized)
        self._charge(total)
        return [self.release(**request) for request in normalized]

    def __repr__(self) -> str:
        limit = (
            f", epsilon_limit={self._epsilon_limit:g}"
            if self._epsilon_limit is not None
            else ""
        )
        return (
            f"PrivBasisSession({self.database!r}, "
            f"releases={self._num_releases}, "
            f"epsilon_spent={self._epsilon_spent:g}{limit})"
        )
