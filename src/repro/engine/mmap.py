"""Memory-mapped shard segments: the out-of-core counting plane.

:class:`~repro.engine.sharded.ShardedBackend` normally holds every
shard database in RAM.  This module gives it a disk-backed
alternative: each shard's CSR rows live in one **segment file** under
the state dir, and queries open them through ``np.memmap`` — the OS
page cache decides which pages are resident, so a dataset far larger
than RAM can be counted with a bounded working set.

Segment file layout (all little-endian)::

    [ header: 64 bytes ] [ offsets: (num_rows+1) int64 ] [ items: int64 ]

The header carries a magic, a format version, the shape, and a CRC32
of the payload.  Every write goes ``<file>.tmp`` → ``fsync`` →
``rename``, and the manifest (``manifest.json``, same discipline) is
only updated afterwards — so a crash mid-spill can strand a ``.tmp``
orphan but never publish a half-written segment under a live name.
Damage that *does* happen to published files (disk faults, manual
truncation) is caught on :meth:`MmapShardStore.open` by the
header/size check (or a full CRC pass with ``verify="crc"``) and
reported as a :class:`~repro.errors.TornSegmentError` naming exactly
the broken segment indices, so the caller re-spills **those shards
only** via :meth:`MmapShardStore.rebuild_segment`.

The store is built **chunk by chunk** (:meth:`MmapShardStore.build`
over a :func:`~repro.datasets.chunked.iter_transaction_chunks`
stream): at no point does it hold more than one segment's rows in
memory.  Reading back, :meth:`shard_database` returns shard databases
whose rows are zero-copy views into the mapping, kept in an LRU cache
sized from ``memory_budget_bytes`` — evicting an entry drops the
mapping, and with it the resident pages.

Process-mode workers attach segments by *path* via
:func:`attach_file_segment` — unlike the shared-memory plane this
needs no ``/dev/shm``, just a common filesystem, which cluster
workers already require for the shared ledger.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import (
    StateStoreError,
    TornSegmentError,
    ValidationError,
)

__all__ = [
    "FileSegmentSpec",
    "MmapShardStore",
    "attach_file_segment",
    "process_resident_bytes",
    "read_segment_rows",
    "write_segment",
]

PathLike = Union[str, Path]

_WORD = 8  # int64 bytes
_MAGIC = b"PBSHRD01"
_HEADER_SIZE = 64
_HEADER_FORMAT = "<8sqqqqq"  # magic, version, rows, size, items, crc
_FORMAT_VERSION = 1
_MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1

#: Default per-store memory budget when none is configured: enough to
#: keep a handful of default-sized segments warm.
DEFAULT_MEMORY_BUDGET_BYTES = 256 * 1024 * 1024


def process_resident_bytes() -> Optional[int]:
    """This process's resident set size in bytes, or ``None``.

    Reads ``/proc/self/statm`` (Linux); other platforms report
    ``None`` rather than a guess.  This is what ``/healthz`` shows
    next to the spilled byte count: pages the OS currently keeps
    resident for us, mapped segments included.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, IndexError, ValueError):
        return None


@dataclass(frozen=True)
class FileSegmentSpec:
    """Picklable handle for one on-disk segment.

    The process plane ships this (not the data) per query, exactly as
    :class:`~repro.engine.shm.ShardSegmentSpec` does for shared
    memory.  ``name`` doubles as the worker-side attachment cache key,
    so it is the **full path** (unique across datasets sharing one
    worker pool) and the file name embeds the segment's generation
    counter — a rebuilt tail gets a fresh name and stale worker caches
    can never serve old rows.
    """

    name: str
    path: str
    num_rows: int
    total_size: int
    num_items: int

    @property
    def num_words(self) -> int:
        """int64 words in the payload (offsets then flattened items)."""
        return self.num_rows + 1 + self.total_size


def _pack_rows(
    rows: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    lengths = np.fromiter(
        (row.size for row in rows), count=len(rows), dtype=np.int64
    )
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if len(rows) and offsets[-1]:
        items = np.concatenate(rows).astype(np.int64, copy=False)
    else:
        items = np.empty(0, dtype=np.int64)
    return offsets, items


def write_segment(
    path: PathLike,
    rows: Sequence[np.ndarray],
    num_items: int,
) -> FileSegmentSpec:
    """Write one segment file atomically; returns its spec.

    ``rows`` must already be sorted unique int64 arrays (the chunked
    loaders and the engine's own shard slices both guarantee this).
    The payload CRC is computed on the way out, the bytes are fsynced,
    and only then does the file appear under ``path`` — a crash leaves
    at worst an orphaned ``path.tmp``, never a torn live segment.

    Raises :class:`~repro.errors.StateStoreError` on I/O failure
    (``ENOSPC`` included), with the temp file cleaned up and any
    previously published segment untouched.
    """
    path = Path(path)
    offsets, items = _pack_rows(rows)
    header_crc = zlib.crc32(offsets.tobytes())
    header_crc = zlib.crc32(items.tobytes(), header_crc)
    header = struct.pack(
        _HEADER_FORMAT,
        _MAGIC,
        _FORMAT_VERSION,
        len(rows),
        int(offsets[-1]),
        int(num_items),
        header_crc,
    ).ljust(_HEADER_SIZE, b"\0")
    temp_path = path.with_name(path.name + ".tmp")
    try:
        with open(temp_path, "wb") as handle:
            handle.write(header)
            handle.write(offsets.tobytes())
            handle.write(items.tobytes())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        temp_path.unlink(missing_ok=True)
        reason = errno.errorcode.get(exc.errno, "I/O error")
        raise StateStoreError(
            f"cannot spill shard segment {path.name}: {reason}: {exc}"
        ) from exc
    return FileSegmentSpec(
        name=str(path),
        path=str(path),
        num_rows=len(rows),
        total_size=int(offsets[-1]),
        num_items=int(num_items),
    )


def _read_header(path: Path) -> Tuple[int, int, int, int]:
    """``(num_rows, total_size, num_items, crc)`` or raise ValueError."""
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER_SIZE)
    if len(raw) < _HEADER_SIZE:
        raise ValueError("short header")
    magic, version, num_rows, total_size, num_items, crc = struct.unpack(
        _HEADER_FORMAT, raw[: struct.calcsize(_HEADER_FORMAT)]
    )
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported segment version {version}")
    return int(num_rows), int(total_size), int(num_items), int(crc)


def verify_segment(
    spec: FileSegmentSpec, check_crc: bool = False
) -> Optional[str]:
    """``None`` if the file matches its spec, else what is wrong.

    The default check is cheap (header fields + exact file size —
    catches truncation, the crash-window damage).  ``check_crc=True``
    reads the whole payload, catching in-place corruption too.
    """
    path = Path(spec.path)
    try:
        num_rows, total_size, num_items, crc = _read_header(path)
    except (OSError, ValueError) as exc:
        return f"unreadable header: {exc}"
    if (num_rows, total_size) != (spec.num_rows, spec.total_size):
        return (
            f"header shape ({num_rows} rows, {total_size} items) "
            f"disagrees with manifest ({spec.num_rows}, "
            f"{spec.total_size})"
        )
    expected_bytes = _HEADER_SIZE + spec.num_words * _WORD
    actual_bytes = path.stat().st_size
    if actual_bytes != expected_bytes:
        return f"file is {actual_bytes} bytes, expected {expected_bytes}"
    if check_crc:
        with open(path, "rb") as handle:
            handle.seek(_HEADER_SIZE)
            actual_crc = 0
            while True:
                block = handle.read(1 << 20)
                if not block:
                    break
                actual_crc = zlib.crc32(block, actual_crc)
        if actual_crc != crc:
            return (
                f"payload crc {actual_crc:#010x} != header {crc:#010x}"
            )
    return None


def attach_file_segment(
    spec: FileSegmentSpec,
) -> Tuple[np.memmap, TransactionDatabase]:
    """Open a segment read-only and rebuild its shard zero-copy.

    Returns ``(memmap, database)``; the rows are views into the
    mapping, so the caller keeps the memmap referenced for as long as
    the database is in use.  Dropping both unmaps the file and gives
    the pages back.  Validates the header/size first — workers never
    count over a torn file.
    """
    problem = verify_segment(spec)
    if problem is not None:
        raise TornSegmentError(
            Path(spec.path).parent, [_index_of(Path(spec.path).name)], problem
        )
    mapping = np.memmap(
        spec.path,
        dtype=np.int64,
        mode="r",
        offset=_HEADER_SIZE,
        shape=(spec.num_words,),
    )
    offsets = mapping[: spec.num_rows + 1]
    items = mapping[spec.num_rows + 1:]
    if offsets.size and int(offsets[-1]) != spec.total_size:
        raise TornSegmentError(
            Path(spec.path).parent,
            [_index_of(Path(spec.path).name)],
            f"offsets end at {int(offsets[-1])}, "
            f"manifest says {spec.total_size}",
        )
    rows: List[np.ndarray] = [
        items[offsets[index]: offsets[index + 1]]
        for index in range(spec.num_rows)
    ]
    database = TransactionDatabase.from_sorted_rows(rows, spec.num_items)
    return mapping, database


def read_segment_rows(spec: FileSegmentSpec) -> List[np.ndarray]:
    """The segment's rows as in-memory copies (tail rewrites)."""
    mapping, database = attach_file_segment(spec)
    try:
        return [np.array(row) for row in database.rows]
    finally:
        del database
        del mapping


def _segment_file_name(index: int, generation: int) -> str:
    return f"seg-{index:06d}-g{generation:04d}.seg"


def _index_of(file_name: str) -> int:
    try:
        return int(file_name.split("-")[1])
    except (IndexError, ValueError):
        return -1


class MmapShardStore:
    """A directory of spilled shard segments plus their manifest.

    Build fresh with :meth:`create` / :meth:`build` (streaming, chunk
    by chunk), reopen read-only with :meth:`open` — the restart path,
    which verifies every segment and raises
    :class:`~repro.errors.TornSegmentError` for damage.  Thread-safe:
    the shard cache takes a lock, so threads-mode workers can pull
    shard databases concurrently.

    Layout under ``directory`` (conventionally
    ``<state-dir>/shards/<dataset>/…``)::

        manifest.json            # shapes + segment file list, atomic
        seg-000000-g0000.seg     # one file per shard
        seg-000001-g0000.seg
        ...

    A segment file's name embeds its generation; tail rewrites (from
    ``extend``) bump it, so readers — including process-plane workers
    with per-name attachment caches — can never confuse old and new
    contents.
    """

    def __init__(
        self,
        directory: PathLike,
        num_items: int,
        rows_per_segment: int,
        memory_budget_bytes: Optional[int],
        specs: List[FileSegmentSpec],
        generations: List[int],
    ) -> None:
        self._directory = Path(directory)
        self._num_items = int(num_items)
        self._rows_per_segment = int(rows_per_segment)
        self._budget = int(
            memory_budget_bytes
            if memory_budget_bytes is not None
            else DEFAULT_MEMORY_BUDGET_BYTES
        )
        if self._budget < 1:
            raise ValidationError(
                f"memory_budget_bytes must be >= 1, got {self._budget}"
            )
        self._specs = list(specs)
        self._generations = list(generations)
        self._pending: List[np.ndarray] = []
        self._lock = threading.Lock()
        self._cache: "OrderedDict[int, Tuple[np.memmap, TransactionDatabase]]"
        self._cache = OrderedDict()
        self._closed = False

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        num_items: int,
        rows_per_segment: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> "MmapShardStore":
        """Start a fresh, empty store under ``directory``.

        Any stale segments/manifest from a previous build in the same
        directory are removed first — a store directory belongs to
        exactly one build at a time.
        """
        from repro.engine.sharded import DEFAULT_SHARD_SIZE

        if num_items < 1:
            raise ValidationError(
                f"num_items must be >= 1, got {num_items}"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob("seg-*.seg*"):
            stale.unlink(missing_ok=True)
        (directory / _MANIFEST_NAME).unlink(missing_ok=True)
        rows_per_segment = int(rows_per_segment or DEFAULT_SHARD_SIZE)
        if rows_per_segment < 1:
            raise ValidationError(
                f"rows_per_segment must be >= 1, got {rows_per_segment}"
            )
        store = cls(
            directory,
            num_items,
            rows_per_segment,
            memory_budget_bytes,
            specs=[],
            generations=[],
        )
        store._write_manifest()
        return store

    @classmethod
    def build(
        cls,
        directory: PathLike,
        chunks: Iterable[object],
        num_items: int,
        rows_per_segment: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> "MmapShardStore":
        """Spill a chunk stream into a fresh store, chunk by chunk.

        ``chunks`` yields :class:`~repro.datasets.chunked
        .TransactionChunk` objects (or anything with ``.rows``); peak
        memory during the build is one segment's rows plus one chunk.
        """
        store = cls.create(
            directory,
            num_items,
            rows_per_segment=rows_per_segment,
            memory_budget_bytes=memory_budget_bytes,
        )
        for chunk in chunks:
            store.append_rows(chunk.rows)
        store.flush()
        return store

    @classmethod
    def open(
        cls,
        directory: PathLike,
        memory_budget_bytes: Optional[int] = None,
        verify: str = "size",
    ) -> "MmapShardStore":
        """Reopen an existing store (the restart / other-worker path).

        Every segment is checked against the manifest — ``"size"``
        (default) validates headers and exact file sizes, ``"crc"``
        additionally re-hashes every payload.  Damage raises
        :class:`~repro.errors.TornSegmentError` listing **all** torn
        segment indices; repair by reopening with ``verify="none"``
        and calling :meth:`rebuild_segment` for exactly those indices.
        """
        if verify not in ("none", "size", "crc"):
            raise ValidationError(
                f"verify must be 'none', 'size' or 'crc', got {verify!r}"
            )
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StateStoreError(
                f"cannot read shard manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StateStoreError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')!r} in {manifest_path}"
            )
        specs: List[FileSegmentSpec] = []
        generations: List[int] = []
        for entry in manifest.get("segments", []):
            specs.append(
                FileSegmentSpec(
                    name=str(directory / str(entry["file"])),
                    path=str(directory / str(entry["file"])),
                    num_rows=int(entry["num_rows"]),
                    total_size=int(entry["total_size"]),
                    num_items=int(manifest["num_items"]),
                )
            )
            generations.append(int(entry.get("generation", 0)))
        store = cls(
            directory,
            int(manifest["num_items"]),
            int(manifest["rows_per_segment"]),
            memory_budget_bytes,
            specs=specs,
            generations=generations,
        )
        if verify != "none":
            torn: List[int] = []
            detail = ""
            for index, spec in enumerate(specs):
                problem = verify_segment(
                    spec, check_crc=(verify == "crc")
                )
                if problem is not None:
                    torn.append(index)
                    detail = detail or problem
            if torn:
                raise TornSegmentError(directory, torn, detail)
        return store

    # -- shape ----------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The store's on-disk root."""
        return self._directory

    @property
    def num_items(self) -> int:
        """Vocabulary size shared by every segment."""
        return self._num_items

    @property
    def rows_per_segment(self) -> int:
        """Target rows per segment (the shard size)."""
        return self._rows_per_segment

    @property
    def num_segments(self) -> int:
        """Published segments (pending unflushed rows not counted)."""
        return len(self._specs)

    @property
    def num_rows(self) -> int:
        """Total spilled transactions."""
        return sum(spec.num_rows for spec in self._specs)

    @property
    def total_size(self) -> int:
        """Total spilled items (sum of transaction lengths)."""
        return sum(spec.total_size for spec in self._specs)

    @property
    def segment_specs(self) -> List[FileSegmentSpec]:
        """Current segment specs, in shard order."""
        return list(self._specs)

    @property
    def memory_budget_bytes(self) -> int:
        """The configured residency budget for cached shards."""
        return self._budget

    # -- writing --------------------------------------------------------
    def append_rows(self, rows: Sequence[np.ndarray]) -> None:
        """Buffer rows; publish full segments as they fill up.

        Items must be sorted unique int64 in ``[0, num_items)`` — the
        chunked loaders guarantee this, and the segment writer trusts
        it exactly like ``from_sorted_rows`` does.
        """
        self._ensure_open()
        for row in rows:
            array = np.asarray(row, dtype=np.int64)
            if array.size and int(array[-1]) >= self._num_items:
                raise ValidationError(
                    f"item {int(array[-1])} out of range for "
                    f"num_items={self._num_items}"
                )
            self._pending.append(array)
        while len(self._pending) >= self._rows_per_segment:
            self._publish(self._pending[: self._rows_per_segment])
            self._pending = self._pending[self._rows_per_segment:]

    def flush(self) -> None:
        """Publish any buffered rows and sync the manifest.

        Also the retry path after a failed publish (e.g. ``ENOSPC``):
        rows that could not be spilled stay in the pending buffer —
        never lost, never double-appended — and are drained here at
        segment granularity once the fault clears.
        """
        self._ensure_open()
        while len(self._pending) >= self._rows_per_segment:
            self._publish(self._pending[: self._rows_per_segment])
            self._pending = self._pending[self._rows_per_segment:]
        if self._pending:
            self._publish(self._pending)
            self._pending = []
        self._write_manifest()

    def extend(self, rows: Sequence[np.ndarray]) -> int:
        """Append ``rows`` to the spilled data; returns the index of
        the first changed segment.

        A partial tail segment is rewritten (read back, concatenated,
        republished under a bumped generation — atomically, so a crash
        mid-extend leaves the old tail live); full segments are never
        touched.  This is the
        :meth:`~repro.engine.backend.CountingBackend.extend` spill
        path: ingest appends, it does not respill.
        """
        self._ensure_open()
        if not rows:
            return max(len(self._specs) - 1, 0)
        first_changed = len(self._specs)
        tail_rows: List[np.ndarray] = []
        stale_tail: Optional[Path] = None
        if (
            self._specs
            and self._specs[-1].num_rows < self._rows_per_segment
        ):
            first_changed = len(self._specs) - 1
            tail_rows = read_segment_rows(self._specs[-1])
            self._drop_cached(first_changed)
            old_spec = self._specs.pop()
            generation = self._generations.pop() + 1
            self._publish(
                tail_rows + [
                    np.asarray(row, dtype=np.int64)
                    for row in rows[: self._rows_per_segment
                                    - len(tail_rows)]
                ],
                generation=generation,
            )
            stale_tail = Path(old_spec.path)
            rows = rows[self._rows_per_segment - len(tail_rows):]
        self.append_rows(rows)
        self.flush()
        # Only after the manifest names the new generation may the old
        # tail go: a crash before this line leaves both files, and the
        # manifest decides which one is live.
        if stale_tail is not None:
            stale_tail.unlink(missing_ok=True)
        return min(first_changed, len(self._specs) - 1)

    def rebuild_segment(
        self, index: int, rows: Sequence[np.ndarray]
    ) -> FileSegmentSpec:
        """Respill exactly one torn segment from its source rows.

        ``rows`` must be the same transactions the segment originally
        held (the chunked loader re-yields them deterministically);
        the row count is checked against the manifest.  All other
        segment files are left untouched — this is the single-shard
        repair the torn-segment error points at.
        """
        self._ensure_open()
        if not 0 <= index < len(self._specs):
            raise ValidationError(
                f"segment index {index} out of range "
                f"(store has {len(self._specs)})"
            )
        expected = self._specs[index]
        if len(rows) != expected.num_rows:
            raise ValidationError(
                f"rebuild of segment {index} got {len(rows)} rows, "
                f"manifest says {expected.num_rows}"
            )
        self._drop_cached(index)
        generation = self._generations[index] + 1
        name = _segment_file_name(index, generation)
        spec = write_segment(
            self._directory / name, list(rows), self._num_items
        )
        old_path = Path(self._specs[index].path)
        self._specs[index] = spec
        self._generations[index] = generation
        self._write_manifest()
        if old_path.name != name:
            old_path.unlink(missing_ok=True)
        return spec

    def _publish(
        self, rows: Sequence[np.ndarray], generation: int = 0
    ) -> None:
        index = len(self._specs)
        name = _segment_file_name(index, generation)
        spec = write_segment(
            self._directory / name, list(rows), self._num_items
        )
        self._specs.append(spec)
        self._generations.append(generation)

    def _write_manifest(self) -> None:
        manifest = {
            "version": _MANIFEST_VERSION,
            "num_items": self._num_items,
            "rows_per_segment": self._rows_per_segment,
            "num_rows": self.num_rows,
            "total_size": self.total_size,
            "segments": [
                {
                    "file": Path(spec.path).name,
                    "num_rows": spec.num_rows,
                    "total_size": spec.total_size,
                    "generation": generation,
                }
                for spec, generation in zip(
                    self._specs, self._generations
                )
            ],
        }
        manifest_path = self._directory / _MANIFEST_NAME
        temp_path = manifest_path.with_name(_MANIFEST_NAME + ".tmp")
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, manifest_path)
        except OSError as exc:
            temp_path.unlink(missing_ok=True)
            raise StateStoreError(
                f"cannot write shard manifest under {self._directory}: "
                f"{exc}"
            ) from exc

    # -- reading --------------------------------------------------------
    def shard_database(self, index: int) -> TransactionDatabase:
        """Shard ``index`` as a database of memmap views (LRU-cached).

        The cache holds at most ``memory_budget_bytes`` worth of open
        shards (estimated as payload + lazily built per-shard index);
        evicted entries drop their mapping, and the OS reclaims the
        pages.  Always keeps at least one entry, or nothing would ever
        be answerable.
        """
        self._ensure_open()
        if not 0 <= index < len(self._specs):
            raise ValidationError(
                f"shard index {index} out of range "
                f"(store has {len(self._specs)})"
            )
        with self._lock:
            entry = self._cache.get(index)
            if entry is not None:
                self._cache.move_to_end(index)
                return entry[1]
        mapping, database = attach_file_segment(self._specs[index])
        with self._lock:
            self._cache[index] = (mapping, database)
            self._cache.move_to_end(index)
            while (
                len(self._cache) > 1
                and self._resident_estimate_locked() > self._budget
            ):
                self._cache.popitem(last=False)
        return database

    def databases(self) -> List[TransactionDatabase]:
        """Every shard database, opened through the cache in order."""
        return [
            self.shard_database(index)
            for index in range(len(self._specs))
        ]

    def database(self) -> TransactionDatabase:
        """The full dataset as one database of memmap-view rows.

        This materializes row *view objects* for every transaction
        (cheap pages, but ~100 bytes of Python object per row), so the
        out-of-core plane avoids it on hot paths; it exists for
        whole-database consumers like the session's result assembly.
        """
        self._ensure_open()
        rows: List[np.ndarray] = []
        for index in range(len(self._specs)):
            rows.extend(self.shard_database(index).rows)
        return TransactionDatabase.from_sorted_rows(
            rows, self._num_items
        )

    def _segment_bytes(self, spec: FileSegmentSpec) -> int:
        # Payload words twice over: the mapped CSR plus the shard's
        # lazily built inverted index, which is the same nnz again.
        return 2 * spec.num_words * _WORD + 96 * spec.num_rows

    def _resident_estimate_locked(self) -> int:
        return sum(
            self._segment_bytes(self._specs[index])
            for index in self._cache
        )

    def resident_bytes(self) -> int:
        """Estimated bytes held by currently cached shards."""
        with self._lock:
            return self._resident_estimate_locked()

    def spilled_bytes(self) -> int:
        """Total bytes of segment files on disk."""
        total = 0
        for spec in self._specs:
            try:
                total += Path(spec.path).stat().st_size
            except OSError:
                pass
        return total

    def stats(self) -> Dict[str, object]:
        """Telemetry block for ``/healthz``/``/metrics``."""
        return {
            "directory": str(self._directory),
            "segments": self.num_segments,
            "rows": self.num_rows,
            "spilled_bytes": self.spilled_bytes(),
            "resident_shard_bytes": self.resident_bytes(),
            "memory_budget_bytes": self._budget,
            "cached_shards": len(self._cache),
        }

    # -- lifecycle ------------------------------------------------------
    def _drop_cached(self, index: int) -> None:
        with self._lock:
            self._cache.pop(index, None)

    def drop_caches(self) -> None:
        """Release every cached shard mapping (keeps files on disk)."""
        with self._lock:
            self._cache.clear()

    def close(self) -> None:
        """Release mappings and mark the store closed (idempotent).

        Segment files stay on disk — a store is durable state; remove
        the directory itself to discard it.
        """
        self.drop_caches()
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StateStoreError(
                f"shard store under {self._directory} is closed"
            )

    def __enter__(self) -> "MmapShardStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MmapShardStore({str(self._directory)!r}, "
            f"segments={self.num_segments}, rows={self.num_rows})"
        )
