"""The counting-backend protocol — the one data-access seam.

Every data access in PrivBasis funnels through four counting
primitives: single-item supports, pairwise supports over a small pool,
conjunction (itemset) support, and the ``2^ℓ`` bin histogram of paper
Algorithm 1.  :class:`CountingBackend` names those primitives as an
abstract interface so that the physical counting strategy — one
in-process bitmap scan, a sharded parallel scan, a remote store — can
vary without touching the algorithm layer, and so that the DP
accounting stays auditable: the mechanisms in :mod:`repro.core` only
ever see counts that came through this surface.

Implementations in this package:

* :class:`repro.engine.bitmap.BitmapBackend` — the default; wraps the
  packed-bitmap / tid-list kernels of :mod:`repro.fim.counting`.
* :class:`repro.engine.sharded.ShardedBackend` — partitions the
  transactions into fixed-size shards and counts them in parallel with
  bounded per-shard memory; ``mode="threads"`` (GIL-releasing numpy
  kernels) or ``mode="processes"`` (true multi-core over shared-memory
  shard segments, see :mod:`repro.engine.parallel`).
* :class:`repro.engine.naive.NaiveBackend` — a pure-Python oracle used
  by the equivalence test-suite.
* :class:`repro.engine.cache.CachedBackend` — a memoizing wrapper used
  by :class:`repro.engine.session.PrivBasisSession`.

Backend selection guidance: stay with :class:`BitmapBackend` unless
the database is large enough (millions of transactions) that a single
bin/bitmap sweep dominates latency — then
:class:`~repro.engine.sharded.ShardedBackend` trades a little merge
overhead for parallel sweeps and bounded memory.  For repeated
releases over one database, wrap either in a
:class:`~repro.engine.session.PrivBasisSession`, which adds the
memoization layer.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError

__all__ = ["CountingBackend", "as_backend", "resolve_backend"]


class CountingBackend(abc.ABC):
    """Abstract counting primitives over one transaction database.

    All exact (non-private) data access used by PrivBasis and the
    baselines is expressible in these four queries; concrete backends
    decide *how* they are answered.  Implementations must return exact
    counts — noise is always added downstream by the DP mechanisms, so
    two correct backends are interchangeable bit-for-bit.

    Beyond the four scalar/vector primitives, the protocol carries
    **batched** forms (:meth:`conjunction_supports`,
    :meth:`bin_counts_batch`, :meth:`extension_supports`) so a release
    stage issues one call for all its queries — the difference between
    one and ``O(queries)`` pool round-trips for the process-parallel
    backend — and a :meth:`close` lifecycle hook for backends that own
    worker pools or shared memory.
    """

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def database(self) -> TransactionDatabase:
        """The underlying (immutable) transaction database."""

    @property
    def num_transactions(self) -> int:
        """``N``, the number of transactions."""
        return self.database.num_transactions

    @property
    def num_items(self) -> int:
        """``|I|``, the vocabulary size."""
        return self.database.num_items

    # -- streaming ingestion -------------------------------------------
    @abc.abstractmethod
    def extend(self, delta: TransactionDatabase) -> None:
        """Advance to counting over ``database ⧺ delta`` incrementally.

        After the call, :attr:`database` is the concatenated database
        (a fresh immutable object sharing rows with both inputs) and
        every primitive answers over it — *support-for-support
        identical* to a cold rebuild on the concatenation, which the
        streaming equivalence suite pins against
        :class:`~repro.engine.naive.NaiveBackend`.  Implementations
        reuse their warm state (packed bitmap rows are extended, tail
        shards grow, memo caches are invalidated per snapshot) rather
        than rebuilding it, which is what makes a live ingest feed
        affordable.

        Not thread-safe: callers that serve concurrent queries must
        serialize ``extend`` against them, exactly as the service does
        with its per-dataset lock.
        """

    def _validate_delta(
        self, delta: TransactionDatabase
    ) -> TransactionDatabase:
        """Shared :meth:`extend` argument check for implementations."""
        if not isinstance(delta, TransactionDatabase):
            raise ValidationError(
                f"extend() takes a TransactionDatabase delta, "
                f"got {type(delta).__name__}"
            )
        if delta.num_items != self.num_items:
            raise ValidationError(
                f"delta has num_items={delta.num_items}, backend counts "
                f"over {self.num_items}"
            )
        return delta

    # -- the four counting primitives ----------------------------------
    @abc.abstractmethod
    def item_supports(self) -> np.ndarray:
        """Support count of every single item, shape ``(num_items,)``."""

    @abc.abstractmethod
    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        """Support of every unordered pair drawn from ``items``.

        Returns a dict keyed by sorted item pairs, covering all
        ``(|items| choose 2)`` pairs.
        """

    @abc.abstractmethod
    def conjunction_support(self, items: Iterable[int]) -> int:
        """Support count of the conjunction (itemset) ``items``."""

    @abc.abstractmethod
    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        """Exact bin histogram for ``basis`` (paper Algorithm 1).

        ``counts[mask]`` is the number of transactions ``t`` with
        ``t ∩ basis`` equal to the subset encoded by ``mask`` (bit
        ``j`` ↔ ``basis[j]``); ``counts.sum() == N``.
        """

    # -- batched primitives --------------------------------------------
    # The per-query primitives above pay one dispatch (and, for the
    # process-parallel backend, one worker round-trip per shard) per
    # call.  The batched forms let hot callers ship a whole stage's
    # queries at once; defaults degrade to per-query loops, so every
    # backend supports them and answers are bit-identical either way.
    def conjunction_supports(
        self, itemsets: Sequence[Iterable[int]]
    ) -> List[int]:
        """Support count of every itemset, aligned with ``itemsets``.

        One batched call per stage instead of per-itemset round-trips;
        backends that can amortize dispatch (sharded thread/process
        pools) override this with a single fan-out.
        """
        return [self.conjunction_support(itemset) for itemset in itemsets]

    def bin_counts_batch(
        self, bases: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        """Exact bin histograms for many bases, aligned with ``bases``.

        BasisFreq's data access is one of these calls for the whole
        basis set (the noise is drawn afterwards, in basis order, so
        batching does not perturb any random stream).
        """
        return [self.bin_counts(basis) for basis in bases]

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        """Supports of ``base ∧ {c}`` for every candidate ``c``.

        Returns an int64 array aligned with ``candidates`` — the
        vectorized one-item-extension query behind lattice miners.
        """
        return np.array(
            [
                self.conjunction_support(tuple(base) + (int(item),))
                for item in candidates
            ],
            dtype=np.int64,
        )

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release external resources (worker pools, shared memory).

        A no-op for in-process backends.  Backends owning OS resources
        (:class:`~repro.engine.sharded.ShardedBackend` in process
        mode) override it; wrappers forward it; sessions and the
        service call it on shutdown.  Safe to call more than once.
        """

    def __enter__(self) -> "CountingBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- derived conveniences ------------------------------------------
    def item_frequencies(self) -> np.ndarray:
        """Frequency (support / N) of every single item."""
        n = self.num_transactions
        if n == 0:
            return np.zeros(self.num_items, dtype=float)
        return self.item_supports() / float(n)

    def frequency(self, items: Iterable[int]) -> float:
        """Frequency ``f(X) = support(X) / N``."""
        n = self.num_transactions
        if n == 0:
            return 0.0
        return self.conjunction_support(items) / float(n)

    def supports(self, itemsets: Sequence[Iterable[int]]) -> List[int]:
        """Support counts for many itemsets (convenience wrapper)."""
        return self.conjunction_supports(list(itemsets))

    def top_k(self, k: int, max_length: Optional[int] = None):
        """Exact (non-private) top-``k`` itemsets with supports.

        The lattice search is inherently global, so the default routes
        to the memoized oracle over the full database
        (:func:`repro.datasets.registry.cached_top_k`); backends that
        cannot do better should leave this alone.
        :class:`~repro.engine.cache.CachedBackend` adds a per-session
        memo on top.
        """
        from repro.datasets.registry import cached_top_k

        return cached_top_k(self.database, k, max_length=max_length)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.database!r})"


def as_backend(source) -> CountingBackend:
    """Coerce ``source`` into a :class:`CountingBackend`.

    A backend passes through unchanged; a
    :class:`TransactionDatabase` is wrapped in the default
    :class:`~repro.engine.bitmap.BitmapBackend`.
    """
    if isinstance(source, CountingBackend):
        return source
    if isinstance(source, TransactionDatabase):
        from repro.engine.bitmap import BitmapBackend

        return BitmapBackend(source)
    raise ValidationError(
        f"expected a TransactionDatabase or CountingBackend, "
        f"got {type(source).__name__}"
    )


def resolve_backend(
    data, backend: Optional[CountingBackend] = None
) -> CountingBackend:
    """Resolve the ``(database, backend=None)`` calling convention.

    The algorithm entry points accept a database positionally plus an
    optional ``backend`` keyword (and, for convenience, a backend in
    the positional slot).  Resolution rules:

    * explicit ``backend`` wins, but must wrap the same database as
      ``data`` when ``data`` is a database (guards against silently
      counting a different dataset);
    * a backend passed positionally is used as-is;
    * a bare database gets the default
      :class:`~repro.engine.bitmap.BitmapBackend`.
    """
    if backend is not None:
        if not isinstance(backend, CountingBackend):
            raise ValidationError(
                f"backend must be a CountingBackend, "
                f"got {type(backend).__name__}"
            )
        if (
            isinstance(data, TransactionDatabase)
            and backend.database is not data
        ):
            raise ValidationError(
                "backend wraps a different database than the one passed "
                "positionally"
            )
        return backend
    return as_backend(data)
