"""Sharded parallel counting with bounded per-shard memory.

:class:`ShardedBackend` partitions the ``N`` transactions into
fixed-size contiguous shards, materializes each shard as its own
:class:`~repro.datasets.transactions.TransactionDatabase` (sharing the
row arrays — no transaction data is copied), and answers every
counting primitive by running the ordinary kernels per shard in a
worker pool and merging:

* item-support vectors and bin histograms add elementwise (the bins of
  a basis partition each shard exactly as they partition ``D``);
* pairwise/conjunction supports add as scalars per key.

Counts are additive over any partition of the transactions, so the
merged answers equal the single-scan answers exactly — the
equivalence test-suite pins this against both
:class:`~repro.engine.bitmap.BitmapBackend` and the naive oracle.

Two execution modes share those merge rules and, deliberately, the
same per-shard kernels (:mod:`repro.engine.parallel`):

* ``mode="threads"`` — a thread pool.  The numpy kernels release the
  GIL in their hot loops and shard databases live in process memory,
  so dispatch is free; but the Python-level per-shard work (bitmap
  row packing, dict merges) serializes on the GIL, which caps the
  speedup well below the core count.
* ``mode="processes"`` — a persistent spawn-safe worker pool over
  **shared-memory shard segments** (:mod:`repro.engine.shm`).  Each
  shard's CSR rows are published once into a
  ``multiprocessing.shared_memory`` block; workers attach zero-copy
  and queries ship as small descriptors (item ids, a basis, a batch of
  itemsets) — never pickled databases.  Every core runs a full
  interpreter, so the GIL ceiling is gone.  ``extend(delta)``
  republishes only the tail shard segment; full shards (and their
  segments) are never touched.  When shared memory is unavailable the
  backend falls back to thread mode instead of failing
  (:attr:`ShardedBackend.effective_mode` tells which one ran).

Per-query working memory is one shard's scratch per worker instead of
one full-database scratch, in both modes, which is what makes long
bases feasible on large ``N``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine import parallel, shm
from repro.engine.backend import CountingBackend
from repro.errors import ValidationError, WorkerPoolError

__all__ = ["ShardedBackend", "DEFAULT_SHARD_SIZE", "EXECUTION_MODES"]

#: Default transactions per shard — large enough that the per-shard
#: numpy kernels amortize Python dispatch, small enough that a worker's
#: scratch stays in cache-friendly territory.
DEFAULT_SHARD_SIZE = 65_536

#: Execution modes of :class:`ShardedBackend`.
EXECUTION_MODES = ("threads", "processes")

_T = TypeVar("_T")


class ShardedBackend(CountingBackend):
    """Partitioned parallel counting over fixed-size transaction shards.

    Parameters
    ----------
    database:
        The transactions to count over.
    shard_size:
        Transactions per shard (the last shard may be smaller).
    max_workers:
        Pool width; defaults to ``min(num_shards, cpu_count)``.
        ``1`` degenerates to a sequential scan (useful for debugging).
    mode:
        ``"threads"`` (default) or ``"processes"`` — see the module
        docstring.  Process mode silently falls back to threads when
        shared memory is unavailable on the platform.
    start_method:
        Process-mode start method; default ``"spawn"`` (safe under a
        threaded service).  ``"fork"``/``"forkserver"`` are accepted
        where the OS provides them and start workers faster.

    Process mode owns OS resources (worker processes, shared-memory
    blocks): call :meth:`close` — or use the backend as a context
    manager — when done.  A worker crash raises a clean
    :class:`~repro.errors.WorkerPoolError` for that query and discards
    the pool; the next query builds a fresh one.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_workers: Optional[int] = None,
        mode: str = "threads",
        start_method: Optional[str] = None,
    ) -> None:
        if shard_size < 1:
            raise ValidationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if mode not in EXECUTION_MODES:
            raise ValidationError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        self._database = database
        self._shard_size = int(shard_size)
        self._max_workers = max_workers
        self._mode = mode
        self._start_method = start_method
        self._shards: Optional[List[TransactionDatabase]] = None
        self._item_supports: Optional[np.ndarray] = None
        # Process-plane state (None until first process-mode query).
        self._segments: Optional[List[shm.ShardSegment]] = None
        self._pool: Optional[parallel.WorkerPool] = None
        self._shm_unavailable = False
        self._closed = False

    @property
    def database(self) -> TransactionDatabase:
        return self._database

    @property
    def num_shards(self) -> int:
        return len(self._ensure_shards())

    @property
    def mode(self) -> str:
        """The requested execution mode."""
        return self._mode

    @property
    def effective_mode(self) -> str:
        """The mode queries actually run in (fallback-aware)."""
        if self._mode == "processes" and not self._shm_unavailable:
            return "processes"
        return "threads"

    # -- streaming ingestion --------------------------------------------
    def extend(self, delta: TransactionDatabase) -> None:
        """Append ``delta`` by growing the tail shard, not resharding.

        Existing full shards are untouched (their warm per-shard
        indexes — and, in process mode, their published shared-memory
        segments — stay valid); the last, partially filled shard is
        rebuilt with the new rows folded in (rows shared, ≤ one
        shard's worth of work), and any remaining delta rows form new
        tail shards.  In process mode only the rebuilt tail's segment
        is republished and only the new tails are published; the
        cached item-support vector is advanced by adding ``delta``'s
        supports.
        """
        self._validate_delta(delta)
        extended = self._database.extended(delta)
        if self._shards is not None and delta.num_transactions:
            first_changed = len(self._shards)
            pending = list(delta.rows)
            last = self._shards[-1]
            if last.num_transactions < self._shard_size:
                first_changed -= 1
                take = min(
                    self._shard_size - last.num_transactions, len(pending)
                )
                merged = list(last.rows) + pending[:take]
                self._shards[-1] = TransactionDatabase.from_sorted_rows(
                    merged, self._database.num_items
                )
                pending = pending[take:]
            for start in range(0, len(pending), self._shard_size):
                self._shards.append(
                    TransactionDatabase.from_sorted_rows(
                        pending[start: start + self._shard_size],
                        self._database.num_items,
                    )
                )
            if self._segments is not None:
                # Republish only the changed tail: unlink the rebuilt
                # shard's old segment, publish it and the new shards
                # under fresh names (workers attach lazily by name, so
                # nothing needs to be told about the swap).
                shm.unlink_all(self._segments[first_changed:])
                self._segments[first_changed:] = shm.publish_all(
                    self._shards[first_changed:]
                )
        if self._item_supports is not None:
            self._item_supports = (
                self._item_supports + delta.item_supports()
            )
        self._database = extended

    # -- shard plumbing -------------------------------------------------
    def _ensure_shards(self) -> List[TransactionDatabase]:
        """Build the shard databases lazily (rows are shared, not
        copied — each shard is one slice of the horizontal CSR rows)."""
        if self._shards is None:
            n = self._database.num_transactions
            shards = [
                self._database.slice(
                    start, min(start + self._shard_size, n)
                )
                for start in range(0, n, self._shard_size)
            ]
            if not shards:  # empty database: one empty shard
                shards.append(
                    TransactionDatabase.from_sorted_rows(
                        [], self._database.num_items
                    )
                )
            self._shards = shards
        return self._shards

    def _workers_for(self, num_shards: int) -> int:
        workers = self._max_workers
        if workers is None:
            workers = min(num_shards, os.cpu_count() or 1)
        return max(1, workers)

    def _map_shards(
        self, task: Callable[[TransactionDatabase], _T]
    ) -> List[_T]:
        """Thread-mode fan-out: ``task`` on every shard, merged later."""
        shards = self._ensure_shards()
        workers = self._workers_for(len(shards))
        if workers <= 1 or len(shards) <= 1:
            return [task(shard) for shard in shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(task, shards))

    # -- the process plane ----------------------------------------------
    def _ensure_process_plane(self) -> bool:
        """Publish segments + start the pool; False → use threads."""
        if (
            self._mode != "processes"
            or self._shm_unavailable
            or self._closed
        ):
            return False
        if self._segments is None:
            if not shm.shared_memory_available():
                self._shm_unavailable = True
                return False
            self._segments = shm.publish_all(self._ensure_shards())
        if self._pool is None or self._pool.broken:
            self._pool = parallel.WorkerPool(
                self._workers_for(len(self._segments)),
                start_method=self._start_method,
            )
        return True

    def _dispatch(self, kind: str, payload: Tuple) -> List:
        """Ship ``(kind, payload)`` to every shard's worker and collect.

        One descriptor per shard; the worker attaches the shard's
        shared segment (cached across queries) and runs the *same*
        kernel thread mode would.  On a worker crash the broken pool
        is discarded so the next query starts fresh, and the clean
        :class:`WorkerPoolError` propagates to the caller.
        """
        tasks = [
            (kind, segment.spec, payload) for segment in self._segments
        ]
        try:
            return self._pool.map_tasks(tasks)
        except WorkerPoolError:
            self._pool = None
            raise

    def _map_kernel(self, kind: str, payload: Tuple) -> List:
        """Run a named shard kernel in the effective mode."""
        if self._ensure_process_plane():
            return self._dispatch(kind, payload)
        kernel = parallel.KERNELS[kind]
        return self._map_shards(lambda shard: kernel(shard, *payload))

    # -- the four primitives --------------------------------------------
    def item_supports(self) -> np.ndarray:
        if self._item_supports is None:
            parts = self._map_kernel("item_supports", ())
            self._item_supports = np.sum(parts, axis=0, dtype=np.int64)
        return self._item_supports.copy()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        pool = canonical_itemset(items)
        parts = self._map_kernel("pairwise_supports", (pool,))
        merged: Dict[Tuple[int, int], int] = {}
        for part in parts:
            for pair, count in part.items():
                merged[pair] = merged.get(pair, 0) + count
        return merged

    def conjunction_support(self, items: Iterable[int]) -> int:
        return self.conjunction_supports([items])[0]

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        return self.bin_counts_batch([basis])[0]

    # -- batched primitives ---------------------------------------------
    def conjunction_supports(
        self, itemsets: Sequence[Iterable[int]]
    ) -> List[int]:
        """One fan-out for the whole batch: each worker answers every
        itemset over its shard, the parent sums per itemset."""
        canonical = [canonical_itemset(itemset) for itemset in itemsets]
        if not canonical:
            return []
        parts = self._map_kernel("conjunction_batch", (canonical,))
        return [
            int(sum(part[index] for part in parts))
            for index in range(len(canonical))
        ]

    def bin_counts_batch(
        self, bases: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        """One fan-out for all bases; histograms add elementwise."""
        bases = [
            tuple(int(item) for item in basis) for basis in bases
        ]
        if not bases:
            return []
        parts = self._map_kernel("bin_counts_batch", (bases,))
        return [
            np.sum(
                [part[index] for part in parts], axis=0, dtype=np.int64
            )
            for index in range(len(bases))
        ]

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        candidates = [int(item) for item in candidates]
        if not candidates:
            return np.zeros(0, dtype=np.int64)
        parts = self._map_kernel(
            "extension_supports",
            (tuple(int(item) for item in base), tuple(candidates)),
        )
        return np.sum(parts, axis=0, dtype=np.int64)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool and unlink every shared segment.

        Idempotent; thread mode has nothing to release.  The backend
        itself stays queryable only in thread mode afterwards — the
        process plane will not be rebuilt once closed.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._segments is not None:
            shm.unlink_all(self._segments)
            self._segments = None

    def __del__(self) -> None:  # pragma: no cover - best-effort
        try:
            if self._pool is not None or self._segments is not None:
                self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        mode = (
            f", mode={self._mode!r}" if self._mode != "threads" else ""
        )
        return (
            f"ShardedBackend({self._database!r}, "
            f"shard_size={self._shard_size}, "
            f"max_workers={self._max_workers}{mode})"
        )
