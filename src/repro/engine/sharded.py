"""Sharded parallel counting with bounded per-shard memory.

:class:`ShardedBackend` partitions the ``N`` transactions into
fixed-size contiguous shards, materializes each shard as its own
:class:`~repro.datasets.transactions.TransactionDatabase` (sharing the
row arrays — no transaction data is copied), and answers every
counting primitive by running the ordinary kernels per shard in a
worker pool and merging:

* item-support vectors and bin histograms add elementwise (the bins of
  a basis partition each shard exactly as they partition ``D``);
* pairwise/conjunction supports add as scalars per key.

Counts are additive over any partition of the transactions, so the
merged answers equal the single-scan answers exactly — the
equivalence test-suite pins this against both
:class:`~repro.engine.bitmap.BitmapBackend` and the naive oracle.

Two execution modes share those merge rules and, deliberately, the
same per-shard kernels (:mod:`repro.engine.parallel`):

* ``mode="threads"`` — a thread pool.  The numpy kernels release the
  GIL in their hot loops and shard databases live in process memory,
  so dispatch is free; but the Python-level per-shard work (bitmap
  row packing, dict merges) serializes on the GIL, which caps the
  speedup well below the core count.
* ``mode="processes"`` — a persistent spawn-safe worker pool over
  **shared-memory shard segments** (:mod:`repro.engine.shm`).  Each
  shard's CSR rows are published once into a
  ``multiprocessing.shared_memory`` block; workers attach zero-copy
  and queries ship as small descriptors (item ids, a basis, a batch of
  itemsets) — never pickled databases.  Every core runs a full
  interpreter, so the GIL ceiling is gone.  ``extend(delta)``
  republishes only the tail shard segment; full shards (and their
  segments) are never touched.  When shared memory is unavailable the
  backend falls back to thread mode instead of failing
  (:attr:`ShardedBackend.effective_mode` tells which one ran).

Per-query working memory is one shard's scratch per worker instead of
one full-database scratch, in both modes, which is what makes long
bases feasible on large ``N``.

**Out-of-core (mmap) plane.**  Instead of an in-memory database, the
backend can be built over a :class:`~repro.engine.mmap.MmapShardStore`
(``ShardedBackend.from_store`` or the ``store=`` kwarg): shards then
live in memory-mapped segment files under the state dir, fetched
through the store's budget-bounded LRU cache in thread mode, or
attached by path in worker processes — which needs no ``/dev/shm`` at
all.  Counts are bit-identical to the in-memory plane (same kernels,
same additive merges, exact integers); only residency changes.  The
full :attr:`database` is materialized lazily as mapped views and only
if something asks for it.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine import parallel, shm
from repro.engine.backend import CountingBackend
from repro.errors import ValidationError, WorkerPoolError

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.engine.mmap import MmapShardStore

__all__ = ["ShardedBackend", "DEFAULT_SHARD_SIZE", "EXECUTION_MODES"]

#: Default transactions per shard — large enough that the per-shard
#: numpy kernels amortize Python dispatch, small enough that a worker's
#: scratch stays in cache-friendly territory.
DEFAULT_SHARD_SIZE = 65_536

#: Execution modes of :class:`ShardedBackend`.
EXECUTION_MODES = ("threads", "processes")

_T = TypeVar("_T")


class _FileSegment:
    """Process-plane handle for one on-disk segment (mmap plane).

    Mirrors the tiny :class:`~repro.engine.shm.ShardSegment` surface
    (``.spec`` / ``.unlink()``) so dispatch and close stay
    mode-agnostic.  ``unlink`` is a no-op: segment files are durable
    store state, owned by the :class:`~repro.engine.mmap
    .MmapShardStore`, not per-backend OS resources.
    """

    def __init__(self, spec) -> None:
        self.spec = spec

    def unlink(self) -> None:
        return None


class ShardedBackend(CountingBackend):
    """Partitioned parallel counting over fixed-size transaction shards.

    Parameters
    ----------
    database:
        The transactions to count over.
    shard_size:
        Transactions per shard (the last shard may be smaller).
    max_workers:
        Pool width; defaults to ``min(num_shards, cpu_count)``.
        ``1`` degenerates to a sequential scan (useful for debugging).
    mode:
        ``"threads"`` (default) or ``"processes"`` — see the module
        docstring.  Process mode silently falls back to threads when
        shared memory is unavailable on the platform.
    start_method:
        Process-mode start method; default ``"spawn"`` (safe under a
        threaded service).  ``"fork"``/``"forkserver"`` are accepted
        where the OS provides them and start workers faster.

    Process mode owns OS resources (worker processes, shared-memory
    blocks): call :meth:`close` — or use the backend as a context
    manager — when done.  A worker crash raises a clean
    :class:`~repro.errors.WorkerPoolError` for that query and discards
    the pool; the next query builds a fresh one.
    """

    def __init__(
        self,
        database: Optional[TransactionDatabase] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_workers: Optional[int] = None,
        mode: str = "threads",
        start_method: Optional[str] = None,
        store: Optional["MmapShardStore"] = None,
    ) -> None:
        if shard_size < 1:
            raise ValidationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if mode not in EXECUTION_MODES:
            raise ValidationError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        if database is None and store is None:
            raise ValidationError(
                "ShardedBackend needs a database or an mmap shard store"
            )
        self._store = store
        self._database = database
        # The store's segmentation is the sharding; a conflicting
        # shard_size would silently change shard boundaries.
        self._shard_size = (
            store.rows_per_segment if store is not None
            else int(shard_size)
        )
        self._max_workers = max_workers
        self._mode = mode
        self._start_method = start_method
        self._shards: Optional[List[TransactionDatabase]] = None
        self._item_supports: Optional[np.ndarray] = None
        # Process-plane state (None until first process-mode query).
        self._segments: Optional[List] = None
        self._pool: Optional[parallel.WorkerPool] = None
        self._shm_unavailable = False
        self._closed = False

    @classmethod
    def from_store(
        cls,
        store: "MmapShardStore",
        max_workers: Optional[int] = None,
        mode: str = "threads",
        start_method: Optional[str] = None,
    ) -> "ShardedBackend":
        """A backend over a spilled shard store (the mmap data plane).

        The store's segments *are* the shards; queries open them
        through its budget-bounded cache (threads) or by path in
        worker processes.  ``close()`` closes the store too — mapped
        segments are this backend's OS resources.
        """
        return cls(
            max_workers=max_workers,
            mode=mode,
            start_method=start_method,
            store=store,
        )

    @property
    def database(self) -> TransactionDatabase:
        """The full database (lazy memmap-view assembly on the mmap
        plane — avoid on hot paths; queries never need it)."""
        if self._database is None:
            self._database = self._store.database()
        return self._database

    @property
    def store(self) -> Optional["MmapShardStore"]:
        """The spill store, or ``None`` on the in-memory plane."""
        return self._store

    @property
    def num_items(self) -> int:
        if self._store is not None:
            return self._store.num_items
        return self.database.num_items

    @property
    def num_transactions(self) -> int:
        if self._store is not None:
            return self._store.num_rows
        return self.database.num_transactions

    @property
    def num_shards(self) -> int:
        if self._store is not None:
            return max(self._store.num_segments, 1)
        return len(self._ensure_shards())

    @property
    def data_plane(self) -> str:
        """``"mmap"`` when spilled to segment files, else ``"memory"``."""
        return "mmap" if self._store is not None else "memory"

    def data_plane_stats(self) -> Dict[str, object]:
        """Residency telemetry for ``/healthz`` (mode + store stats)."""
        stats: Dict[str, object] = {
            "plane": self.data_plane,
            "mode": self.effective_mode,
            "shards": self.num_shards,
        }
        if self._store is not None:
            stats.update(self._store.stats())
        return stats

    @property
    def mode(self) -> str:
        """The requested execution mode."""
        return self._mode

    @property
    def effective_mode(self) -> str:
        """The mode queries actually run in (fallback-aware)."""
        if self._mode == "processes" and not self._shm_unavailable:
            return "processes"
        return "threads"

    # -- streaming ingestion --------------------------------------------
    def extend(self, delta: TransactionDatabase) -> None:
        """Append ``delta`` by growing the tail shard, not resharding.

        Existing full shards are untouched (their warm per-shard
        indexes — and, in process mode, their published shared-memory
        segments — stay valid); the last, partially filled shard is
        rebuilt with the new rows folded in (rows shared, ≤ one
        shard's worth of work), and any remaining delta rows form new
        tail shards.  In process mode only the rebuilt tail's segment
        is republished and only the new tails are published; the
        cached item-support vector is advanced by adding ``delta``'s
        supports.
        """
        self._validate_delta(delta)
        if self._store is not None:
            self._extend_store(delta)
            return
        extended = self._database.extended(delta)
        if self._shards is not None and delta.num_transactions:
            first_changed = len(self._shards)
            pending = list(delta.rows)
            last = self._shards[-1]
            if last.num_transactions < self._shard_size:
                first_changed -= 1
                take = min(
                    self._shard_size - last.num_transactions, len(pending)
                )
                merged = list(last.rows) + pending[:take]
                self._shards[-1] = TransactionDatabase.from_sorted_rows(
                    merged, self._database.num_items
                )
                pending = pending[take:]
            for start in range(0, len(pending), self._shard_size):
                self._shards.append(
                    TransactionDatabase.from_sorted_rows(
                        pending[start: start + self._shard_size],
                        self._database.num_items,
                    )
                )
            if self._segments is not None:
                # Republish only the changed tail: unlink the rebuilt
                # shard's old segment, publish it and the new shards
                # under fresh names (workers attach lazily by name, so
                # nothing needs to be told about the swap).
                shm.unlink_all(self._segments[first_changed:])
                self._segments[first_changed:] = shm.publish_all(
                    self._shards[first_changed:]
                )
        if self._item_supports is not None:
            self._item_supports = (
                self._item_supports + delta.item_supports()
            )
        self._database = extended

    def _extend_store(self, delta: TransactionDatabase) -> None:
        """Mmap-plane extend: append to the spilled segments.

        The store rewrites only its partial tail segment (atomically,
        under a bumped generation) and adds new segments for the rest;
        here we refresh the process plane's segment list from that
        first changed index on — workers cache attachments by file
        name, and the new generation's names are fresh, so stale
        mappings can never answer.
        """
        if not delta.num_transactions:
            return
        first_changed = self._store.extend(list(delta.rows))
        if self._segments is not None:
            self._segments[first_changed:] = [
                _FileSegment(spec)
                for spec in self._store.segment_specs[first_changed:]
            ]
        if self._item_supports is not None:
            self._item_supports = (
                self._item_supports + delta.item_supports()
            )
        if self._database is not None:
            self._database = self._database.extended(delta)

    # -- shard plumbing -------------------------------------------------
    def _ensure_shards(self) -> List[TransactionDatabase]:
        """Build the shard databases lazily (rows are shared, not
        copied — each shard is one slice of the horizontal CSR rows)."""
        if self._shards is None:
            n = self._database.num_transactions
            shards = [
                self._database.slice(
                    start, min(start + self._shard_size, n)
                )
                for start in range(0, n, self._shard_size)
            ]
            if not shards:  # empty database: one empty shard
                shards.append(
                    TransactionDatabase.from_sorted_rows(
                        [], self._database.num_items
                    )
                )
            self._shards = shards
        return self._shards

    def _workers_for(self, num_shards: int) -> int:
        workers = self._max_workers
        if workers is None:
            workers = min(num_shards, os.cpu_count() or 1)
        return max(1, workers)

    def _map_shards(
        self, task: Callable[[TransactionDatabase], _T]
    ) -> List[_T]:
        """Thread-mode fan-out: ``task`` on every shard, merged later.

        On the mmap plane shards are fetched per task through the
        store's LRU cache instead of being held in a list, so the
        resident set stays inside the store's memory budget even while
        a query sweeps every shard.
        """
        if self._store is not None:
            count = self._store.num_segments
            if count == 0:
                empty = TransactionDatabase.from_sorted_rows(
                    [], self._store.num_items
                )
                return [task(empty)]
            indices = range(count)

            def run(index: int) -> _T:
                return task(self._store.shard_database(index))

            workers = self._workers_for(count)
            if workers <= 1 or count <= 1:
                return [run(index) for index in indices]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(run, indices))
        shards = self._ensure_shards()
        workers = self._workers_for(len(shards))
        if workers <= 1 or len(shards) <= 1:
            return [task(shard) for shard in shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(task, shards))

    # -- the process plane ----------------------------------------------
    def _ensure_process_plane(self) -> bool:
        """Publish segments + start the pool; False → use threads.

        On the mmap plane the "segments" are the store's files — no
        shared-memory probe, no publication copy: workers attach by
        path.  An empty store has nothing to fan out, so it answers in
        thread mode (one empty shard).
        """
        if (
            self._mode != "processes"
            or self._shm_unavailable
            or self._closed
        ):
            return False
        if self._store is not None:
            if self._store.num_segments == 0:
                return False
            if self._segments is None:
                self._segments = [
                    _FileSegment(spec)
                    for spec in self._store.segment_specs
                ]
        elif self._segments is None:
            if not shm.shared_memory_available():
                self._shm_unavailable = True
                return False
            self._segments = shm.publish_all(self._ensure_shards())
        if self._pool is None or self._pool.broken:
            self._pool = parallel.WorkerPool(
                self._workers_for(len(self._segments)),
                start_method=self._start_method,
            )
        return True

    def _dispatch(self, kind: str, payload: Tuple) -> List:
        """Ship ``(kind, payload)`` to every shard's worker and collect.

        One descriptor per shard; the worker attaches the shard's
        shared segment (cached across queries) and runs the *same*
        kernel thread mode would.  On a worker crash the broken pool
        is discarded so the next query starts fresh, and the clean
        :class:`WorkerPoolError` propagates to the caller.
        """
        tasks = [
            (kind, segment.spec, payload) for segment in self._segments
        ]
        try:
            return self._pool.map_tasks(tasks)
        except WorkerPoolError:
            self._pool = None
            raise

    def _map_kernel(self, kind: str, payload: Tuple) -> List:
        """Run a named shard kernel in the effective mode."""
        if self._ensure_process_plane():
            return self._dispatch(kind, payload)
        kernel = parallel.KERNELS[kind]
        return self._map_shards(lambda shard: kernel(shard, *payload))

    # -- the four primitives --------------------------------------------
    def item_supports(self) -> np.ndarray:
        if self._item_supports is None:
            parts = self._map_kernel("item_supports", ())
            self._item_supports = np.sum(parts, axis=0, dtype=np.int64)
        return self._item_supports.copy()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        pool = canonical_itemset(items)
        parts = self._map_kernel("pairwise_supports", (pool,))
        merged: Dict[Tuple[int, int], int] = {}
        for part in parts:
            for pair, count in part.items():
                merged[pair] = merged.get(pair, 0) + count
        return merged

    def conjunction_support(self, items: Iterable[int]) -> int:
        return self.conjunction_supports([items])[0]

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        return self.bin_counts_batch([basis])[0]

    # -- batched primitives ---------------------------------------------
    def conjunction_supports(
        self, itemsets: Sequence[Iterable[int]]
    ) -> List[int]:
        """One fan-out for the whole batch: each worker answers every
        itemset over its shard, the parent sums per itemset."""
        canonical = [canonical_itemset(itemset) for itemset in itemsets]
        if not canonical:
            return []
        parts = self._map_kernel("conjunction_batch", (canonical,))
        return [
            int(sum(part[index] for part in parts))
            for index in range(len(canonical))
        ]

    def bin_counts_batch(
        self, bases: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        """One fan-out for all bases; histograms add elementwise."""
        bases = [
            tuple(int(item) for item in basis) for basis in bases
        ]
        if not bases:
            return []
        parts = self._map_kernel("bin_counts_batch", (bases,))
        return [
            np.sum(
                [part[index] for part in parts], axis=0, dtype=np.int64
            )
            for index in range(len(bases))
        ]

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        candidates = [int(item) for item in candidates]
        if not candidates:
            return np.zeros(0, dtype=np.int64)
        parts = self._map_kernel(
            "extension_supports",
            (tuple(int(item) for item in base), tuple(candidates)),
        )
        return np.sum(parts, axis=0, dtype=np.int64)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool and release every segment.

        Idempotent.  Shared-memory segments are unlinked; on the mmap
        plane the store's cached mappings are dropped and the store is
        closed (its files stay on disk — reopen with
        ``MmapShardStore.open``).  After close, only the in-memory
        thread plane stays queryable — the process plane will not be
        rebuilt.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._segments is not None:
            shm.unlink_all(self._segments)
            self._segments = None
        if self._store is not None:
            self._store.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort
        try:
            if self._pool is not None or self._segments is not None:
                self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        mode = (
            f", mode={self._mode!r}" if self._mode != "threads" else ""
        )
        source = (
            repr(self._store)
            if self._store is not None
            else repr(self._database)
        )
        return (
            f"ShardedBackend({source}, "
            f"shard_size={self._shard_size}, "
            f"max_workers={self._max_workers}{mode})"
        )
