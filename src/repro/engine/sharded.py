"""Sharded parallel counting with bounded per-shard memory.

:class:`ShardedBackend` partitions the ``N`` transactions into
fixed-size contiguous shards, materializes each shard as its own
:class:`~repro.datasets.transactions.TransactionDatabase` (sharing the
row arrays — no transaction data is copied), and answers every
counting primitive by running the ordinary kernels per shard in a
thread pool and merging:

* item-support vectors and bin histograms add elementwise (the bins of
  a basis partition each shard exactly as they partition ``D``);
* pairwise/conjunction supports add as scalars per key.

Counts are additive over any partition of the transactions, so the
merged answers equal the single-scan answers exactly — the
equivalence test-suite pins this against both
:class:`~repro.engine.bitmap.BitmapBackend` and the naive oracle.

Threads (not processes) are the right pool here: the numpy kernels
release the GIL in their hot loops and the shard databases live in
shared memory, so there is no pickling cost.  Peak *working* memory
per query is one shard's scratch (masks, packed bitmaps) per worker
instead of one full-database scratch, which is what makes long bases
feasible on large ``N``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine.backend import CountingBackend
from repro.errors import ValidationError
from repro.fim.counting import ItemBitmaps, bin_counts_for_items

__all__ = ["ShardedBackend", "DEFAULT_SHARD_SIZE"]

#: Default transactions per shard — large enough that the per-shard
#: numpy kernels amortize Python dispatch, small enough that a worker's
#: scratch stays in cache-friendly territory.
DEFAULT_SHARD_SIZE = 65_536

_T = TypeVar("_T")


class ShardedBackend(CountingBackend):
    """Partitioned parallel counting over fixed-size transaction shards.

    Parameters
    ----------
    database:
        The transactions to count over.
    shard_size:
        Transactions per shard (the last shard may be smaller).
    max_workers:
        Thread-pool width; defaults to ``min(num_shards, cpu_count)``.
        ``1`` degenerates to a sequential scan (useful for debugging).
    """

    def __init__(
        self,
        database: TransactionDatabase,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_workers: Optional[int] = None,
    ) -> None:
        if shard_size < 1:
            raise ValidationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._database = database
        self._shard_size = int(shard_size)
        self._max_workers = max_workers
        self._shards: Optional[List[TransactionDatabase]] = None
        self._item_supports: Optional[np.ndarray] = None

    @property
    def database(self) -> TransactionDatabase:
        return self._database

    @property
    def num_shards(self) -> int:
        return len(self._ensure_shards())

    # -- streaming ingestion --------------------------------------------
    def extend(self, delta: TransactionDatabase) -> None:
        """Append ``delta`` by growing the tail shard, not resharding.

        Existing full shards are untouched (their warm per-shard
        indexes stay valid); the last, partially filled shard is
        rebuilt with the new rows folded in (rows shared, ≤ one
        shard's worth of work), and any remaining delta rows form new
        tail shards.  The cached item-support vector is advanced by
        adding ``delta``'s supports.
        """
        self._validate_delta(delta)
        extended = self._database.extended(delta)
        if self._shards is not None and delta.num_transactions:
            pending = [
                delta.transaction_array(index)
                for index in range(delta.num_transactions)
            ]
            last = self._shards[-1]
            if last.num_transactions < self._shard_size:
                take = min(
                    self._shard_size - last.num_transactions, len(pending)
                )
                merged = [
                    last.transaction_array(index)
                    for index in range(last.num_transactions)
                ] + pending[:take]
                self._shards[-1] = TransactionDatabase.from_sorted_rows(
                    merged, self._database.num_items
                )
                pending = pending[take:]
            for start in range(0, len(pending), self._shard_size):
                self._shards.append(
                    TransactionDatabase.from_sorted_rows(
                        pending[start: start + self._shard_size],
                        self._database.num_items,
                    )
                )
        if self._item_supports is not None:
            self._item_supports = (
                self._item_supports + delta.item_supports()
            )
        self._database = extended

    # -- shard plumbing -------------------------------------------------
    def _ensure_shards(self) -> List[TransactionDatabase]:
        """Build the shard databases lazily (rows are shared, not copied)."""
        if self._shards is None:
            n = self._database.num_transactions
            shards: List[TransactionDatabase] = []
            for start in range(0, n, self._shard_size):
                stop = min(start + self._shard_size, n)
                rows = [
                    self._database.transaction_array(index)
                    for index in range(start, stop)
                ]
                shards.append(
                    TransactionDatabase.from_sorted_rows(
                        rows, self._database.num_items
                    )
                )
            if not shards:  # empty database: one empty shard
                shards.append(
                    TransactionDatabase.from_sorted_rows(
                        [], self._database.num_items
                    )
                )
            self._shards = shards
        return self._shards

    def _map_shards(
        self, task: Callable[[TransactionDatabase], _T]
    ) -> List[_T]:
        """Apply ``task`` to every shard, in parallel when it pays."""
        shards = self._ensure_shards()
        workers = self._max_workers
        if workers is None:
            workers = min(len(shards), os.cpu_count() or 1)
        if workers <= 1 or len(shards) <= 1:
            return [task(shard) for shard in shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(task, shards))

    # -- the four primitives --------------------------------------------
    def item_supports(self) -> np.ndarray:
        if self._item_supports is None:
            parts = self._map_shards(
                lambda shard: shard.item_supports()
            )
            self._item_supports = np.sum(parts, axis=0, dtype=np.int64)
        return self._item_supports.copy()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        pool = canonical_itemset(items)
        parts = self._map_shards(
            lambda shard: ItemBitmaps(shard, pool).pairwise_supports()
        )
        merged: Dict[Tuple[int, int], int] = {}
        for part in parts:
            for pair, count in part.items():
                merged[pair] = merged.get(pair, 0) + count
        return merged

    def conjunction_support(self, items: Iterable[int]) -> int:
        itemset = canonical_itemset(items)
        return int(
            sum(self._map_shards(lambda shard: shard.support(itemset)))
        )

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        parts = self._map_shards(
            lambda shard: bin_counts_for_items(shard, basis)
        )
        return np.sum(parts, axis=0, dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"ShardedBackend({self._database!r}, "
            f"shard_size={self._shard_size}, "
            f"max_workers={self._max_workers})"
        )
