"""The counting-backend engine and the cached serving session.

This package is the data-access seam of the library.  Layering:

1. :mod:`repro.engine.backend` — the :class:`CountingBackend`
   protocol: item supports, pairwise supports, conjunction support,
   and the ``2^ℓ`` bin histogram of paper Algorithm 1.  Every
   mechanism in :mod:`repro.core` and every baseline counts through a
   backend, which keeps the DP accounting auditable (one inspectable
   surface) and the physical counting strategy swappable.
2. Concrete backends — :class:`BitmapBackend` (default, single
   process, pooled packed bitmaps), :class:`ShardedBackend` (parallel
   fixed-size shards with bounded per-shard memory; ``mode="threads"``
   or the multi-core ``mode="processes"`` plane of
   :mod:`repro.engine.parallel` /:mod:`repro.engine.shm`), and
   :class:`NaiveBackend` (pure-Python oracle for the equivalence
   tests).
3. :class:`CachedBackend` — memoizes every exact query result.
4. :class:`PrivBasisSession` — one database + one cached backend
   serving repeated ``release(k, epsilon)`` calls; the repeated-query
   serving layer the ROADMAP's production north-star asks for.

Streaming: every backend also implements ``extend(delta)`` —
incremental append of new transactions (packed-bitmap row extension,
tail-shard growth, oracle append, snapshot-scoped cache invalidation)
that is support-for-support identical to a cold rebuild on the
concatenated database.  Sessions ride on it via
:meth:`PrivBasisSession.ingest`, pinning a snapshot version on every
release; the append-only source of truth is
:class:`repro.datasets.stream.TransactionLog`.

Choosing a backend: :class:`BitmapBackend` for anything that fits one
core comfortably; :class:`ShardedBackend` when ``N`` reaches millions
and sweeps dominate latency; always a :class:`PrivBasisSession` when
more than one release will hit the same database.
"""

from repro.engine.backend import (
    CountingBackend,
    as_backend,
    resolve_backend,
)
from repro.engine.bitmap import BitmapBackend
from repro.engine.cache import CachedBackend
from repro.engine.naive import NaiveBackend
from repro.engine.parallel import WorkerPool, start_methods_available
from repro.engine.sharded import (
    DEFAULT_SHARD_SIZE,
    EXECUTION_MODES,
    ShardedBackend,
)
from repro.engine.session import PrivBasisSession, ReleaseRequest
from repro.engine.shm import shared_memory_available

__all__ = [
    "BitmapBackend",
    "CachedBackend",
    "CountingBackend",
    "DEFAULT_SHARD_SIZE",
    "EXECUTION_MODES",
    "NaiveBackend",
    "PrivBasisSession",
    "ReleaseRequest",
    "ShardedBackend",
    "WorkerPool",
    "as_backend",
    "resolve_backend",
    "shared_memory_available",
    "start_methods_available",
]
