"""The process-parallel counting plane: pool, tasks, shard kernels.

This module is the execution substrate behind
``ShardedBackend(mode="processes")``.  Three pieces:

* **Shard kernels** (:func:`shard_item_supports` …) — the per-shard
  counting functions.  They are defined *here*, at module level, so
  that thread mode and process mode run **the same code** on the same
  shard databases: thread mode calls them directly, process mode calls
  them inside a worker after attaching the shard's shared-memory
  segment.  Counts are exact integers, so identical kernels + identical
  shard boundaries ⇒ bit-identical merged answers — the property the
  backend-equivalence suites pin.
* **Query descriptors** — what actually crosses the process boundary.
  A task is ``(kind, spec, payload)``: a short string, a
  :class:`~repro.engine.shm.ShardSegmentSpec` (name + shape, tens of
  bytes), and the query parameters (item ids, a basis, a batch of
  itemsets).  Transaction data never crosses; workers attach the
  published segments zero-copy and cache the attachment per segment
  name, so a warm worker answers from its existing mapping.
* **:class:`WorkerPool`** — a persistent, spawn-safe
  ``ProcessPoolExecutor`` wrapper.  ``spawn`` is the default start
  method (safe under threads and on every platform; ``fork`` is
  accepted where the OS provides it and is cheaper to start).  A
  worker crash surfaces as a clean
  :class:`~repro.errors.WorkerPoolError` — never a partial merge —
  and the pool is discarded so the owner can rebuild.

GIL note: thread mode already releases the GIL inside the numpy
kernels, but the per-shard *Python* dispatch (building ``ItemBitmaps``
rows, packing, dict merges) serializes.  Process mode removes that
ceiling: each worker owns a whole interpreter, and the shared-memory
segments keep the data one-copy-total.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.engine.mmap import FileSegmentSpec, attach_file_segment
from repro.engine.shm import ShardSegmentSpec, attach_segment
from repro.errors import ValidationError, WorkerPoolError
from repro.fim.counting import ItemBitmaps, bin_counts_for_items

__all__ = [
    "WorkerPool",
    "default_start_method",
    "shard_bin_counts_batch",
    "shard_conjunction_batch",
    "shard_extension_supports",
    "shard_item_supports",
    "shard_pairwise_supports",
    "start_methods_available",
]


# ----------------------------------------------------------------------
# Per-shard kernels (shared by thread mode and process workers)
# ----------------------------------------------------------------------
def shard_item_supports(shard: TransactionDatabase) -> np.ndarray:
    """Single-item supports of one shard."""
    return shard.item_supports()


def shard_pairwise_supports(
    shard: TransactionDatabase, pool: Sequence[int]
) -> Dict[Tuple[int, int], int]:
    """All pairwise supports over ``pool`` within one shard."""
    return ItemBitmaps(shard, pool).pairwise_supports()


def shard_conjunction_batch(
    shard: TransactionDatabase, itemsets: Sequence[Sequence[int]]
) -> List[int]:
    """Support of every itemset in ``itemsets`` within one shard."""
    return [shard.support(itemset) for itemset in itemsets]


def shard_bin_counts_batch(
    shard: TransactionDatabase, bases: Sequence[Sequence[int]]
) -> List[np.ndarray]:
    """Bin histogram of every basis in ``bases`` within one shard."""
    return [bin_counts_for_items(shard, basis) for basis in bases]


def shard_extension_supports(
    shard: TransactionDatabase,
    base: Sequence[int],
    candidates: Sequence[int],
) -> np.ndarray:
    """Supports of ``base ∧ {c}`` for every candidate, one shard.

    One vectorized AND+popcount sweep over a bitmap pool covering the
    base and the candidates — the same kernel the exact top-k miner
    uses per heap pop.
    """
    pool = sorted({int(item) for item in base}
                  | {int(item) for item in candidates})
    bitmaps = ItemBitmaps(shard, pool)
    base_row = bitmaps.conjunction_row(sorted({int(i) for i in base}))
    return bitmaps.extension_supports(base_row, candidates)


#: kind string → kernel; the payload tuple is splatted after the shard.
KERNELS = {
    "item_supports": shard_item_supports,
    "pairwise_supports": shard_pairwise_supports,
    "conjunction_batch": shard_conjunction_batch,
    "bin_counts_batch": shard_bin_counts_batch,
    "extension_supports": shard_extension_supports,
}


# ----------------------------------------------------------------------
# Worker-side state and entry point
# ----------------------------------------------------------------------
#: Attached segments, per worker process: name → (block, database).
#: Bounded FIFO so segments replaced by ``extend`` (published under
#: fresh names) cannot pin unbounded memory in long-lived workers.
_ATTACHED: Dict[str, Tuple[object, TransactionDatabase]] = {}
_ATTACHED_LIMIT = 128


def _attached_database(spec) -> TransactionDatabase:
    """Attach (or reuse) a segment by spec — shared-memory or file.

    :class:`~repro.engine.mmap.FileSegmentSpec` attaches through
    ``np.memmap`` (the out-of-core plane; no ``/dev/shm`` involved);
    :class:`~repro.engine.shm.ShardSegmentSpec` through POSIX shared
    memory.  Both cache per unique segment name, and names are never
    reused across contents (fresh shm names / generation-stamped file
    names), so a cache hit is always current data.
    """
    entry = _ATTACHED.get(spec.name)
    if entry is None:
        while len(_ATTACHED) >= _ATTACHED_LIMIT:
            stale_block, _ = _ATTACHED.pop(next(iter(_ATTACHED)))
            close = getattr(stale_block, "close", None)
            try:
                if close is not None:
                    close()  # shm blocks; memmaps just drop the ref
            except Exception:
                pass
        if isinstance(spec, FileSegmentSpec):
            entry = attach_file_segment(spec)
        else:
            entry = attach_segment(spec)
        _ATTACHED[spec.name] = entry
    return entry[1]


def _init_worker() -> None:
    """Worker bootstrap: leave interrupt handling to the owner.

    A terminal Ctrl+C is delivered to the whole foreground process
    group, workers included; without this they die mid-``queue.get``
    printing KeyboardInterrupt tracebacks over the owner's own clean
    shutdown.  The owner alone decides when workers stop (pool
    shutdown sentinels), so workers ignore SIGINT.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _run_task(task: Tuple) -> object:
    """Execute one query descriptor inside a worker process."""
    kind, spec, payload = task
    if kind == "ping":
        return os.getpid()
    if kind == "crash_for_testing":
        # Deterministic hard death (no atexit, no cleanup) so the
        # worker-crash test exercises the BrokenProcessPool path.
        os._exit(payload or 1)
    kernel = KERNELS.get(kind)
    if kernel is None:
        raise ValidationError(f"unknown worker task kind {kind!r}")
    shard = _attached_database(spec)
    return kernel(shard, *payload)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def start_methods_available() -> Tuple[str, ...]:
    """Start methods the OS offers (``spawn`` is always present)."""
    import multiprocessing

    return tuple(multiprocessing.get_all_start_methods())


def default_start_method() -> str:
    """``spawn`` — safe everywhere, including threaded services."""
    return "spawn"


class WorkerPool:
    """A persistent pool of counting workers over shared segments.

    Parameters
    ----------
    max_workers:
        Pool width (≥ 1).
    start_method:
        ``"spawn"`` (default; safe under threads, works everywhere) or
        ``"fork"``/``"forkserver"`` where the platform provides them.

    Workers are started lazily by the executor on first submit; the
    pool survives across queries (startup is paid once, which is the
    entire point of keeping it persistent).  All failures of the pool
    itself surface as :class:`~repro.errors.WorkerPoolError`; task
    *code* errors (e.g. a bad basis) re-raise as themselves.
    """

    def __init__(
        self, max_workers: int, start_method: Optional[str] = None
    ) -> None:
        import multiprocessing

        if max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        method = start_method or default_start_method()
        if method not in start_methods_available():
            raise ValidationError(
                f"start method {method!r} not available here; "
                f"choose from {start_methods_available()}"
            )
        self._start_method = method
        self._executor = ProcessPoolExecutor(
            max_workers=int(max_workers),
            mp_context=multiprocessing.get_context(method),
            initializer=_init_worker,
        )
        self._broken = False

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def broken(self) -> bool:
        """True once a worker crash has poisoned the pool."""
        return self._broken

    def map_tasks(self, tasks: Sequence[Tuple]) -> List[object]:
        """Run every descriptor, preserving order; all-or-nothing.

        A crashed worker (``BrokenProcessPool``) raises
        :class:`WorkerPoolError` and marks the pool broken — no
        partial result list is ever returned, so a merge can never
        silently sum fewer shards than exist.
        """
        if self._broken:
            raise WorkerPoolError(
                "worker pool already broken; build a new one"
            )
        try:
            futures = [
                self._executor.submit(_run_task, task) for task in tasks
            ]
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            self._broken = True
            self.shutdown()
            raise WorkerPoolError(
                f"a counting worker died mid-query "
                f"(start_method={self._start_method}); the query was "
                f"not answered and the pool has been discarded"
            ) from exc

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        state = "broken" if self._broken else "live"
        return f"WorkerPool({self._start_method}, {state})"
