"""A pure-Python reference backend (the equivalence-test oracle).

:class:`NaiveBackend` answers every counting primitive with the most
literal implementation possible — one Python loop over transactions
held as frozensets — so that it is easy to audit by eye.  It exists to
pin the semantics of :class:`~repro.engine.backend.CountingBackend`:
the property tests assert that :class:`~repro.engine.bitmap
.BitmapBackend` and :class:`~repro.engine.sharded.ShardedBackend`
agree with it exactly on random databases.  Do not use it for real
workloads; it is O(N·|t|) Python per query.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine.backend import CountingBackend

__all__ = ["NaiveBackend"]


class NaiveBackend(CountingBackend):
    """Loop-and-count oracle over transactions as frozensets."""

    def __init__(self, database: TransactionDatabase) -> None:
        self._database = database
        self._transactions: List[frozenset] = [
            frozenset(transaction) for transaction in database
        ]

    @property
    def database(self) -> TransactionDatabase:
        return self._database

    def extend(self, delta: TransactionDatabase) -> None:
        """Oracle append: extend the frozenset list, nothing clever."""
        self._validate_delta(delta)
        self._database = self._database.extended(delta)
        self._transactions.extend(
            frozenset(transaction) for transaction in delta
        )

    def item_supports(self) -> np.ndarray:
        counts = np.zeros(self._database.num_items, dtype=np.int64)
        for transaction in self._transactions:
            for item in transaction:
                counts[item] += 1
        return counts

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        pool = canonical_itemset(items)
        supports: Dict[Tuple[int, int], int] = {
            pair: 0 for pair in combinations(pool, 2)
        }
        for transaction in self._transactions:
            present = sorted(set(pool) & transaction)
            for pair in combinations(present, 2):
                supports[pair] += 1
        return supports

    def conjunction_support(self, items: Iterable[int]) -> int:
        itemset = frozenset(canonical_itemset(items))
        return sum(
            1
            for transaction in self._transactions
            if itemset <= transaction
        )

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        basis = [int(item) for item in basis]
        counts = np.zeros(1 << len(basis), dtype=np.int64)
        for transaction in self._transactions:
            mask = 0
            for position, item in enumerate(basis):
                if item in transaction:
                    mask |= 1 << position
            counts[mask] += 1
        return counts
