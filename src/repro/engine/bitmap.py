"""The default in-process backend over the packed-bitmap kernels.

:class:`BitmapBackend` answers the four counting primitives with the
same kernels the library has always used — the CSR tid-list index of
:class:`~repro.datasets.transactions.TransactionDatabase`, the packed
:class:`~repro.fim.counting.ItemBitmaps` sweeps, and the scatter-add
bin kernel — but *pools* the expensive intermediates so repeated
queries reuse them:

* the item-support vector is computed once;
* bitmap pools are memoized keyed by their (frozen) item set, and a
  conjunction query is answered from any pooled bitmap whose item set
  covers it before falling back to tid-list intersection.

The backend is exact and stateless from the caller's point of view
(the database is immutable), so memoization never changes results.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine.backend import CountingBackend
from repro.fim.counting import ItemBitmaps, bin_counts_for_items

__all__ = ["BitmapBackend"]


class BitmapBackend(CountingBackend):
    """Single-process bitmap/tid-list counting (the library default).

    Parameters
    ----------
    database:
        The transactions to count over.
    max_pools:
        Cap on memoized bitmap pools (each pool is
        ``|items| × N/8`` bytes); the **least recently used** pool is
        evicted first — any hit, including a covering-pool hit on a
        conjunction query, refreshes recency, so a hot pool survives
        a stream of one-off pools.
    """

    def __init__(
        self, database: TransactionDatabase, max_pools: int = 8
    ) -> None:
        self._database = database
        self._max_pools = int(max_pools)
        self._pools: Dict[FrozenSet[int], ItemBitmaps] = {}
        self._item_supports: Optional[np.ndarray] = None
        #: Number of ItemBitmaps pools built so far (cache telemetry;
        #: the session tests assert warm releases do not grow this).
        self.pools_built = 0

    @property
    def database(self) -> TransactionDatabase:
        return self._database

    # -- streaming ingestion --------------------------------------------
    def extend(self, delta: TransactionDatabase) -> None:
        """Append ``delta`` by extending packed rows, not rebuilding.

        Every memoized :class:`ItemBitmaps` pool grows in place by
        packing only the new transactions (see
        :meth:`ItemBitmaps.extend`), the item-support vector is
        advanced by adding ``delta``'s supports, and the database
        reference moves to the copy-on-write concatenation — so a warm
        backend stays warm across an ingest batch.
        """
        self._validate_delta(delta)
        extended = self._database.extended(delta)
        for pool in self._pools.values():
            pool.extend(delta)
        if self._item_supports is not None:
            self._item_supports = (
                self._item_supports + delta.item_supports()
            )
        self._database = extended

    # -- bitmap pooling -------------------------------------------------
    def bitmaps(self, items: Sequence[int]) -> ItemBitmaps:
        """A (memoized) packed bitmap pool over exactly ``items``."""
        key = frozenset(int(item) for item in items)
        pool = self._pools.get(key)
        if pool is None:
            pool = ItemBitmaps(self._database, sorted(key))
            self.pools_built += 1
            if self._max_pools and len(self._pools) >= self._max_pools:
                coldest = next(iter(self._pools))
                del self._pools[coldest]
        else:
            del self._pools[key]  # reinsert below: mark most recent
        self._pools[key] = pool
        return pool

    def _covering_pool(
        self, items: FrozenSet[int]
    ) -> Optional[ItemBitmaps]:
        """Any memoized pool whose item set covers ``items``.

        A covering hit counts as a *use*: the pool is moved to the
        most-recently-used position so conjunction traffic keeps its
        pool resident (LRU, not insertion-order, eviction).
        """
        for key, pool in self._pools.items():
            if items <= key:
                self._pools[key] = self._pools.pop(key)
                return pool
        return None

    # -- the four primitives --------------------------------------------
    def item_supports(self) -> np.ndarray:
        if self._item_supports is None:
            self._item_supports = self._database.item_supports()
        return self._item_supports.copy()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        return self.bitmaps(items).pairwise_supports()

    def conjunction_support(self, items: Iterable[int]) -> int:
        itemset = canonical_itemset(items)
        if not itemset:
            return self._database.num_transactions
        pool = self._covering_pool(frozenset(itemset))
        if pool is not None:
            return pool.support(itemset)
        return self._database.support(itemset)

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        return bin_counts_for_items(self._database, basis)

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        """One AND+popcount sweep over a pooled bitmap set.

        Reuses any memoized pool covering ``base ∪ candidates`` (the
        top-k miner's pops all sit under the pool its first pop
        builds), building a fresh pool only on a cold start.
        """
        if not len(candidates):
            return np.zeros(0, dtype=np.int64)
        needed = {int(item) for item in base} | {
            int(item) for item in candidates
        }
        bitmaps = self._covering_pool(frozenset(needed))
        if bitmaps is None:
            bitmaps = self.bitmaps(sorted(needed))
        base_row = bitmaps.conjunction_row(
            sorted({int(item) for item in base})
        )
        return bitmaps.extension_supports(base_row, candidates)
