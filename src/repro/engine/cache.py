"""Memoizing backend wrapper — the cache behind a serving session.

All four counting primitives (plus the exact top-k oracle) are pure
functions of one immutable database *snapshot*, so their results can
be memoized until the data advances: a streaming append
(:meth:`CachedBackend.extend`) bumps the snapshot version and drops
every memo, while the inner backend's warm structures survive the
append incrementally.  :class:`CachedBackend` wraps any inner
:class:`~repro.engine.backend.CountingBackend` and keeps:

* the item-support vector (built once);
* pairwise-support dicts keyed by the (frozen) item pool;
* conjunction supports keyed by the canonical itemset;
* bin histograms keyed by the basis tuple — the big win: a repeated
  release that lands on a basis already counted skips the full data
  scan of Algorithm 1 entirely;
* top-k mining results keyed by ``(k, max_length)``.

Only *exact* (non-private) quantities are ever cached.  Noise is drawn
downstream per release, so cache reuse never reuses randomness and the
DP guarantees of each release are unaffected; what is affected is the
privacy *budget* bookkeeping across releases, which is the session's
job (see :class:`repro.engine.session.PrivBasisSession`).

Every cache is size-capped (oldest entry evicted first) so a
long-lived serving session holds bounded memory: bin histograms are
up to ``2^ℓ`` int64 each and would otherwise accumulate one array per
distinct basis ever released.

Per-kind hit/miss counters are exposed via :meth:`cache_info` so tests
and dashboards can verify reuse is actually happening.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import (
    TransactionDatabase,
    canonical_itemset,
)
from repro.engine.backend import CountingBackend

__all__ = ["CachedBackend"]

Itemset = Tuple[int, ...]

#: Default per-cache entry caps.  Bins and top-k results are the large
#: entries (2^ℓ int64 per basis, k tuples per mining result);
#: conjunctions are scalars and can afford a much larger pool.
DEFAULT_CACHE_LIMITS = {
    "bin_counts": 64,
    "pairwise_supports": 32,
    "conjunction_support": 4096,
    "top_k": 64,
}


def _evict_oldest(cache: Dict, limit: int) -> None:
    """FIFO-evict until ``cache`` has room for one more entry."""
    while len(cache) >= limit:
        del cache[next(iter(cache))]


class CachedBackend(CountingBackend):
    """Wrap ``inner`` with per-query memoization and hit/miss stats.

    ``cache_limits`` overrides entries of :data:`DEFAULT_CACHE_LIMITS`
    (per-kind maximum memoized results; oldest evicted first).
    """

    def __init__(
        self,
        inner: CountingBackend,
        cache_limits: Optional[Dict[str, int]] = None,
    ) -> None:
        self._inner = inner
        self._limits = dict(DEFAULT_CACHE_LIMITS)
        if cache_limits:
            self._limits.update(cache_limits)
        self._item_supports: Optional[np.ndarray] = None
        self._pair_cache: Dict[
            FrozenSet[int], Dict[Tuple[int, int], int]
        ] = {}
        self._conjunction_cache: Dict[Itemset, int] = {}
        self._bin_cache: Dict[Itemset, np.ndarray] = {}
        self._topk_cache: Dict[Tuple[int, Optional[int]], object] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        #: Monotonic count of :meth:`extend` calls — every memoized
        #: entry is implicitly scoped to this snapshot version, and an
        #: append bumps it while dropping the now-stale memos (so it
        #: doubles as the invalidation count for telemetry).
        self._snapshot_version = 0

    @property
    def inner(self) -> CountingBackend:
        """The wrapped backend."""
        return self._inner

    @property
    def database(self) -> TransactionDatabase:
        return self._inner.database

    @property
    def snapshot_version(self) -> int:
        """How many times this cache has been advanced by an append."""
        return self._snapshot_version

    # -- streaming ingestion -------------------------------------------
    def extend(self, delta: TransactionDatabase) -> None:
        """Append ``delta`` through the inner backend, scoped safely.

        Every memoized result is a function of one database snapshot,
        so an append *must* invalidate them — a stale bin histogram
        would silently misprice every later release.  The inner
        backend's warm state (extended bitmap pools, grown tail
        shards) survives; only this wrapper's memos are dropped, and
        the snapshot version advances so callers can tell which data
        state an answer came from.
        """
        self._inner.extend(delta)
        self.clear()
        self._snapshot_version += 1

    # -- stats ----------------------------------------------------------
    def _record(self, kind: str, hit: bool) -> None:
        table = self._hits if hit else self._misses
        table[kind] = table.get(kind, 0) + 1

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters per query kind (for tests/telemetry)."""
        kinds = sorted(set(self._hits) | set(self._misses))
        return {
            kind: {
                "hits": self._hits.get(kind, 0),
                "misses": self._misses.get(kind, 0),
            }
            for kind in kinds
        }

    def clear(self) -> None:
        """Drop every memoized result (counters are kept)."""
        self._item_supports = None
        self._pair_cache.clear()
        self._conjunction_cache.clear()
        self._bin_cache.clear()
        self._topk_cache.clear()

    # -- the memoized primitives ---------------------------------------
    def item_supports(self) -> np.ndarray:
        if self._item_supports is None:
            self._record("item_supports", hit=False)
            self._item_supports = self._inner.item_supports()
        else:
            self._record("item_supports", hit=True)
        return self._item_supports.copy()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        key = frozenset(int(item) for item in items)
        cached = self._pair_cache.get(key)
        if cached is None:
            self._record("pairwise_supports", hit=False)
            cached = self._inner.pairwise_supports(sorted(key))
            _evict_oldest(
                self._pair_cache, self._limits["pairwise_supports"]
            )
            self._pair_cache[key] = cached
        else:
            self._record("pairwise_supports", hit=True)
        return dict(cached)

    def conjunction_support(self, items: Iterable[int]) -> int:
        key = canonical_itemset(items)
        cached = self._conjunction_cache.get(key)
        if cached is None:
            self._record("conjunction_support", hit=False)
            cached = self._inner.conjunction_support(key)
            _evict_oldest(
                self._conjunction_cache,
                self._limits["conjunction_support"],
            )
            self._conjunction_cache[key] = cached
        else:
            self._record("conjunction_support", hit=True)
        return cached

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        key = tuple(int(item) for item in basis)
        cached = self._bin_cache.get(key)
        if cached is None:
            self._record("bin_counts", hit=False)
            cached = self._inner.bin_counts(key)
            _evict_oldest(self._bin_cache, self._limits["bin_counts"])
            self._bin_cache[key] = cached
        else:
            self._record("bin_counts", hit=True)
        return cached.copy()

    # -- batched primitives (memoized per key, misses batched) ---------
    def conjunction_supports(
        self, itemsets: Sequence[Iterable[int]]
    ) -> list:
        """Per-key memo check, then one inner batch for the misses.

        Hit/miss counters advance exactly as the per-query loop would
        (first occurrence of a new key is the miss; repeats, including
        within the batch, are hits), so cache telemetry stays stable
        under batching.
        """
        keys = [canonical_itemset(itemset) for itemset in itemsets]
        values: Dict[Itemset, int] = {}
        missing: list = []
        for key in keys:
            if key in values:
                self._record("conjunction_support", hit=True)
                continue
            cached = self._conjunction_cache.get(key)
            if cached is None:
                self._record("conjunction_support", hit=False)
                missing.append(key)
                values[key] = -1  # placeholder until the batch lands
            else:
                self._record("conjunction_support", hit=True)
                values[key] = cached
        if missing:
            counts = self._inner.conjunction_supports(missing)
            for key, count in zip(missing, counts):
                count = int(count)
                values[key] = count
                _evict_oldest(
                    self._conjunction_cache,
                    self._limits["conjunction_support"],
                )
                self._conjunction_cache[key] = count
        return [values[key] for key in keys]

    def bin_counts_batch(
        self, bases: Sequence[Sequence[int]]
    ) -> list:
        keys = [tuple(int(item) for item in basis) for basis in bases]
        values: Dict[Itemset, Optional[np.ndarray]] = {}
        missing: list = []
        for key in keys:
            if key in values:
                self._record("bin_counts", hit=True)
                continue
            cached = self._bin_cache.get(key)
            if cached is None:
                self._record("bin_counts", hit=False)
                missing.append(key)
                values[key] = None
            else:
                self._record("bin_counts", hit=True)
                values[key] = cached
        if missing:
            results = self._inner.bin_counts_batch(missing)
            for key, counts in zip(missing, results):
                values[key] = counts
                _evict_oldest(
                    self._bin_cache, self._limits["bin_counts"]
                )
                self._bin_cache[key] = counts
        return [values[key].copy() for key in keys]

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        """Pass through: candidate sets rarely repeat exactly, so a
        memo would only hold dead arrays."""
        return self._inner.extension_supports(base, candidates)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Forward to the inner backend (pool/segment teardown)."""
        self._inner.close()

    def top_k(self, k: int, max_length: Optional[int] = None):
        key = (int(k), max_length)
        cached = self._topk_cache.get(key)
        if cached is None:
            self._record("top_k", hit=False)
            cached = self._inner.top_k(k, max_length=max_length)
            _evict_oldest(self._topk_cache, self._limits["top_k"])
            self._topk_cache[key] = cached
        else:
            self._record("top_k", hit=True)
        return list(cached)

    def __repr__(self) -> str:
        return f"CachedBackend({self._inner!r})"
