"""Shared-memory publication of transaction shards.

The process-parallel counting plane (:mod:`repro.engine.parallel`)
needs every worker to see the shard databases without pickling them:
at kosarak/AOL scale a shard is megabytes of row data, and shipping it
per query would erase the parallel win.  This module publishes each
shard **once** into a POSIX shared-memory block that workers attach to
zero-copy, and ships only a tiny picklable :class:`ShardSegmentSpec`
(name + shape metadata) per query.

Layout of one segment (a single ``multiprocessing.shared_memory``
block of int64 words)::

    [ offsets: num_rows + 1 ] [ items: total_size ]

— exactly the CSR-of-rows horizontal representation of
:class:`~repro.datasets.transactions.TransactionDatabase`: row ``i``
is ``items[offsets[i]:offsets[i+1]]``.  :func:`attach_segment`
reconstructs the shard database from **views** into the block (the
trusted :meth:`~repro.datasets.transactions.TransactionDatabase
.from_sorted_rows` path), so a worker's copy of a shard costs one
``mmap``, not one allocation per row.

Ownership: the publishing process (the backend) is the only one that
ever unlinks a segment; workers merely ``close()`` their attachments.
Spawned workers share the owner's resource-tracker process, so a
worker's attach is an idempotent re-registration of the entry the
owner created and the owner's ``unlink`` retires it exactly once
(``track=False`` short-circuits the re-registration on Python 3.13+).

:func:`shared_memory_available` is the capability probe behind the
graceful thread-mode fallback: platforms without ``/dev/shm`` (or
with it mounted unwritable) simply never enter process mode.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError

__all__ = [
    "ShardSegment",
    "ShardSegmentSpec",
    "attach_segment",
    "publish_all",
    "publish_shard",
    "shared_memory_available",
    "unlink_all",
]

_WORD = 8  # int64 bytes


def shared_memory_available() -> bool:
    """Can this platform create (and reopen) a shared-memory block?"""
    try:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=_WORD)
        try:
            block.close()
        finally:
            block.unlink()
        return True
    except Exception:
        return False


@dataclass(frozen=True)
class ShardSegmentSpec:
    """The picklable handle a query descriptor carries per shard.

    Everything a worker needs to attach: the OS-level block name plus
    the shape metadata that cannot be recovered from the block alone.
    """

    name: str
    num_rows: int
    total_size: int
    num_items: int

    @property
    def num_words(self) -> int:
        """int64 words in the block (offsets then flattened items)."""
        return self.num_rows + 1 + self.total_size


class ShardSegment:
    """One published shard: the owning side of a shared block.

    Created via :func:`publish_shard`; the owner keeps the instance
    alive for as long as workers may attach, then calls
    :meth:`unlink` exactly once (idempotent) when the shard is
    replaced or the backend closes.
    """

    def __init__(self, block, spec: ShardSegmentSpec) -> None:
        self._block = block
        self.spec = spec
        self._unlinked = False

    def unlink(self) -> None:
        """Release the block (idempotent; attached workers keep their
        mappings alive until they close them)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._block.close()
        finally:
            try:
                self._block.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"ShardSegment({self.spec.name!r}, rows={self.spec.num_rows}, "
            f"size={self.spec.total_size})"
        )


def _pack_rows(
    rows: Tuple[np.ndarray, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten row arrays into (offsets, items) CSR arrays, int64."""
    lengths = np.fromiter(
        (row.size for row in rows), count=len(rows), dtype=np.int64
    )
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if len(rows):
        items = (
            np.concatenate(rows).astype(np.int64, copy=False)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
    else:
        items = np.empty(0, dtype=np.int64)
    return offsets, items


def publish_shard(shard: TransactionDatabase) -> ShardSegment:
    """Copy ``shard``'s rows into a fresh shared block, once.

    The one full copy in the process plane's lifetime: publication.
    Every later query attaches views instead of copying.
    """
    from multiprocessing import shared_memory

    offsets, items = _pack_rows(shard.rows)
    spec_name = f"repro_shard_{secrets.token_hex(8)}"
    num_words = offsets.size + items.size
    block = shared_memory.SharedMemory(
        create=True, size=max(num_words, 1) * _WORD, name=spec_name
    )
    words = np.ndarray(num_words, dtype=np.int64, buffer=block.buf)
    words[: offsets.size] = offsets
    words[offsets.size:] = items
    spec = ShardSegmentSpec(
        name=spec_name,
        num_rows=shard.num_transactions,
        total_size=int(offsets[-1]),
        num_items=shard.num_items,
    )
    return ShardSegment(block, spec)


def attach_segment(spec: ShardSegmentSpec):
    """Worker-side attach: rebuild the shard database zero-copy.

    Returns ``(shared_memory_block, database)``; the caller must keep
    the block referenced for as long as the database is used (rows are
    views into its buffer) and ``close()`` it when evicting.
    """
    from multiprocessing import shared_memory

    try:
        block = shared_memory.SharedMemory(name=spec.name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        # Attaching registers the name with the resource tracker.  Our
        # workers are spawned by the owner's executor, so they share
        # the owner's tracker process, whose cache is a *set*: the
        # worker's register is an idempotent re-add of the entry the
        # owner created, and the owner's eventual ``unlink`` removes
        # it exactly once.  No double-unlink — and no unregister here,
        # which would strip the shared entry out from under the owner.
        block = shared_memory.SharedMemory(name=spec.name)
    if block.size < spec.num_words * _WORD:
        block.close()
        raise ValidationError(
            f"segment {spec.name} holds {block.size} bytes, spec needs "
            f"{spec.num_words * _WORD}"
        )
    words = np.ndarray(spec.num_words, dtype=np.int64, buffer=block.buf)
    offsets = words[: spec.num_rows + 1]
    items = words[spec.num_rows + 1:]
    if offsets.size and int(offsets[-1]) != spec.total_size:
        block.close()
        raise ValidationError(
            f"segment {spec.name} is inconsistent: offsets end at "
            f"{int(offsets[-1])}, spec says {spec.total_size}"
        )
    rows: List[np.ndarray] = [
        items[offsets[index]: offsets[index + 1]]
        for index in range(spec.num_rows)
    ]
    database = TransactionDatabase.from_sorted_rows(
        rows, spec.num_items
    )
    return block, database


def publish_all(
    shards: List[TransactionDatabase],
) -> List[ShardSegment]:
    """Publish every shard; on failure unlink what was published."""
    segments: List[ShardSegment] = []
    try:
        for shard in shards:
            segments.append(publish_shard(shard))
    except Exception:
        for segment in segments:
            segment.unlink()
        raise
    return segments


def unlink_all(segments: Optional[List[ShardSegment]]) -> None:
    """Unlink every segment, ignoring already-gone blocks."""
    for segment in segments or ():
        segment.unlink()
