"""Per-stage release telemetry: what ran, what it cost, what it read.

A :class:`ReleaseTrace` is attached to every
:class:`~repro.core.result.PrivBasisResult` produced by the pipeline:
one :class:`StageTrace` per executed stage recording the ε spent, the
wall time, and the backend query counts, plus release-level facts
(planner, λ, which branch ran).  Traces are pure observability — they
contain only quantities that are either public parameters (ε splits,
timings) or already-released DP outputs (λ, the branch), so exposing
them on the service wire leaks nothing beyond the release itself.

Query counts come from :class:`QueryCountingBackend`, a transparent
proxy the executor wraps around whatever backend serves the release;
it delegates every primitive unchanged (memo caches underneath keep
hitting), so counting is observationally free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.engine.backend import CountingBackend

__all__ = ["QueryCountingBackend", "ReleaseTrace", "StageTrace"]


@dataclass(frozen=True)
class StageTrace:
    """Telemetry for one executed stage."""

    name: str
    epsilon: float
    touches_data: bool
    wall_time_s: float
    #: Backend primitive call counts during the stage, e.g.
    #: ``{"item_supports": 1, "top_k": 1}``.
    queries: Dict[str, int]
    note: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-serializable stage record (milliseconds on the wire)."""
        return {
            "stage": self.name,
            "epsilon": self.epsilon,
            "touches_data": self.touches_data,
            "wall_time_ms": round(self.wall_time_s * 1000.0, 3),
            "queries": dict(self.queries),
            "note": self.note,
        }


@dataclass
class ReleaseTrace:
    """The full execution record of one pipeline release."""

    planner: str
    epsilon: float
    k: int
    eta: float
    noise: str
    lam: int = 0
    #: ``"single_basis"`` or ``"pairs"`` — the branch actually taken.
    branch: str = ""
    stages: List[StageTrace] = field(default_factory=list)

    @property
    def epsilon_spent(self) -> float:
        """Total ε across the recorded stages (equals ε when complete)."""
        return float(sum(stage.epsilon for stage in self.stages))

    @property
    def used_single_basis(self) -> bool:
        """True when the λ ≤ threshold fast path ran."""
        return self.branch == "single_basis"

    def stage(self, name: str) -> Optional[StageTrace]:
        """The trace of the named stage, if it executed."""
        for entry in self.stages:
            if entry.name == name:
                return entry
        return None

    def to_wire(self) -> Dict[str, object]:
        """The ``trace`` payload of a release response."""
        return {
            "planner": self.planner,
            "epsilon": self.epsilon,
            "epsilon_spent": self.epsilon_spent,
            "k": self.k,
            "eta": self.eta,
            "noise": self.noise,
            "lam": self.lam,
            "branch": self.branch,
            "stages": [stage.to_wire() for stage in self.stages],
        }


class QueryCountingBackend(CountingBackend):
    """Transparent counting proxy over any backend.

    Forwards every primitive to ``inner`` unchanged and tallies calls
    per primitive name; the executor diffs :meth:`counts` around each
    stage to attribute queries.  Explicit delegation (rather than the
    base class defaults) matters for :meth:`top_k`, which must reach a
    wrapped :class:`~repro.engine.cache.CachedBackend`'s memo instead
    of the global oracle.
    """

    def __init__(self, inner: CountingBackend) -> None:
        self._inner = inner
        self._counts: Dict[str, int] = {}

    @property
    def inner(self) -> CountingBackend:
        """The wrapped backend."""
        return self._inner

    @property
    def database(self) -> TransactionDatabase:
        return self._inner.database

    def counts(self) -> Dict[str, int]:
        """Cumulative primitive call counts since construction."""
        return dict(self._counts)

    def _tally(self, kind: str, count: int = 1) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + count

    def extend(self, delta: TransactionDatabase) -> None:
        self._inner.extend(delta)

    def item_supports(self) -> np.ndarray:
        self._tally("item_supports")
        return self._inner.item_supports()

    def pairwise_supports(
        self, items: Sequence[int]
    ) -> Dict[Tuple[int, int], int]:
        self._tally("pairwise_supports")
        return self._inner.pairwise_supports(items)

    def conjunction_support(self, items: Iterable[int]) -> int:
        self._tally("conjunction_support")
        return self._inner.conjunction_support(items)

    def bin_counts(self, basis: Sequence[int]) -> np.ndarray:
        self._tally("bin_counts")
        return self._inner.bin_counts(basis)

    # Batched forms forward as batches (so the inner backend's one-
    # fan-out overrides fire) but tally under the per-query kind names:
    # the trace records how many *queries* a stage asked, regardless of
    # how they were shipped.
    def conjunction_supports(
        self, itemsets: Sequence[Iterable[int]]
    ) -> List[int]:
        itemsets = list(itemsets)
        self._tally("conjunction_support", len(itemsets))
        return self._inner.conjunction_supports(itemsets)

    def bin_counts_batch(
        self, bases: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        bases = list(bases)
        self._tally("bin_counts", len(bases))
        return self._inner.bin_counts_batch(bases)

    def extension_supports(
        self, base: Sequence[int], candidates: Sequence[int]
    ) -> np.ndarray:
        self._tally("extension_supports", max(len(candidates), 1))
        return self._inner.extension_supports(base, candidates)

    def close(self) -> None:
        self._inner.close()

    def top_k(self, k: int, max_length: Optional[int] = None):
        self._tally("top_k")
        return self._inner.top_k(k, max_length=max_length)

    def __repr__(self) -> str:
        return f"QueryCountingBackend({self._inner!r})"
