"""Cross-release reuse: answer ``(k', ε')`` from a stored ``(k, ε)``
release by post-processing, without touching data or spending budget.

Differential privacy's post-processing theorem says any function of an
already-published ε-DP output is itself ε-DP *at no additional cost*.
A stored top-``k`` release therefore answers a later ``(k', ε')``
request for free whenever the request is **covered** by the stored
one — the explicit utility bound this module owns:

* **coverage** — ``k' ≤ k``: the stored release already ranks at
  least ``k'`` itemsets, so truncating it publishes nothing new;
* **accuracy** — ``ε' ≤ ε``: the noise in the stored counts has scale
  ``∝ 1/ε``, so a release bought with ``ε ≥ ε'`` is at least as
  accurate as what spending ``ε'`` fresh would buy.  Serving it
  *over-delivers* utility and charges nothing;
* **freshness carve-out** — ``(k', ε') ≠ (k, ε)``: a byte-identical
  repeat of a stored request is deliberately served by a fresh
  pipeline run.  The service's wire contract promises every release
  its own randomness (coalesced identical requests must return
  distinct outputs), and a client repeating its exact request is
  asking for a re-draw, not a re-read.  Strictly dominated requests
  carry no such promise and are served at ε = 0.

Scoping: a stored release is only ever reused for the **same dataset
at the same snapshot version** (a truncation of version-``v`` counts
says nothing about version-``v+1`` data) and — enforced one layer up,
in :class:`repro.store.results.ResultStore` and the service — only
for the **same tenant** (reuse across tenants would hand tenant B an
answer tenant A paid for, collapsing per-tenant accounting).  See
``docs/privacy-accounting.md`` for the full soundness argument.

The post-processor itself is :func:`top_k_truncate`: re-rank the
stored itemsets by noisy frequency (deterministic tie-break on the
items) and keep the first ``k'``.  It is a pure function of the
stored payload — bit-identical across calls, zero data access — which
the property suite (``tests/pipeline/test_reuse_properties.py``)
pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "ReuseDecision",
    "ReuseIndex",
    "StoredRelease",
    "payload_from_result",
    "result_from_payload",
    "reuse_covers",
    "top_k_truncate",
]

#: Relative tolerance for the ε comparisons (wire floats round-trip
#: exactly, but composed arithmetic may wobble in the last ulp).
EPSILON_RTOL = 1e-9

#: Stored releases kept per (dataset, snapshot_version) key.  The
#: index holds a dominance *frontier* (no entry covers another), so
#: this bound is rarely binding; it caps adversarial request mixes.
MAX_ENTRIES_PER_KEY = 32


@dataclass(frozen=True)
class StoredRelease:
    """One stored release the index can answer requests from.

    ``payload`` is the wire-shaped published output (``method`` /
    ``k`` / ``epsilon`` / ``itemsets`` with items, noisy_count,
    noisy_frequency) — exactly what left the process when the release
    was paid for, and the *only* thing reuse ever reads.
    """

    dataset: str
    snapshot_version: int
    k: int
    epsilon: float
    payload: Mapping[str, Any]
    #: Insertion order within the index (deterministic tie-break).
    seq: int = 0

    def describe(self) -> Dict[str, Any]:
        """The ``source`` block of a wire ``reuse`` payload."""
        return {
            "k": self.k,
            "epsilon": self.epsilon,
            "snapshot_version": self.snapshot_version,
        }


@dataclass(frozen=True)
class ReuseDecision:
    """The outcome of one reuse lookup."""

    hit: bool
    reason: str
    source: Optional[StoredRelease] = None
    #: The ε the request would have cost as a fresh run (0 on a miss).
    epsilon_saved: float = 0.0


def _same_epsilon(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=EPSILON_RTOL, abs_tol=0.0)


def reuse_covers(
    stored_k: int, stored_epsilon: float, k: int, epsilon: float
) -> bool:
    """The utility bound: may a stored ``(k, ε)`` serve ``(k', ε')``?

    True iff ``k' ≤ k`` and ``ε' ≤ ε`` and the request is not a
    byte-identical repeat of the stored release (the freshness
    carve-out; see the module docstring).  Pure arithmetic — callers
    layer dataset/snapshot/tenant scoping on top.
    """
    if k < 1 or not (epsilon > 0):
        return False
    if k > stored_k:
        return False
    if epsilon > stored_epsilon * (1 + EPSILON_RTOL):
        return False
    if k == stored_k and _same_epsilon(epsilon, stored_epsilon):
        return False
    return True


def top_k_truncate(
    payload: Mapping[str, Any], k: int, epsilon: float
) -> Dict[str, Any]:
    """Post-process a stored payload into a ``(k', ε')`` answer.

    Re-ranks the stored itemsets by decreasing noisy frequency (ties
    broken on the item tuple, so the output is a pure deterministic
    function of the payload), keeps the first ``k'``, and re-stamps
    the ``k``/``epsilon`` echo to the request's values.  The noisy
    statistics themselves are copied verbatim — post-processing never
    re-noises.
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValidationError(f"k must be a positive integer, got {k!r}")
    if not (float(epsilon) > 0):
        raise ValidationError(
            f"epsilon must be positive, got {epsilon!r}"
        )
    stored_k = payload.get("k")
    if isinstance(stored_k, int) and k > stored_k:
        raise ValidationError(
            f"cannot truncate a k={stored_k} release to k={k}; "
            f"reuse requires k' <= k"
        )
    entries = [dict(entry) for entry in payload.get("itemsets", ())]
    entries.sort(
        key=lambda entry: (
            -float(entry["noisy_frequency"]),
            tuple(entry["items"]),
        )
    )
    truncated: Dict[str, Any] = {
        "method": payload.get("method", "privbasis"),
        "k": k,
        "epsilon": float(epsilon),
        "itemsets": entries[:k],
    }
    if "snapshot_version" in payload:
        truncated["snapshot_version"] = payload["snapshot_version"]
    return truncated


def payload_from_result(result: Any) -> Dict[str, Any]:
    """The stored (wire-shaped) payload of a release result.

    Mirrors the service wire schema — published statistics only — so
    session-level and service-level reuse read the same shape.  Kept
    here rather than importing the service layer: the pipeline must
    not depend on it.
    """
    payload: Dict[str, Any] = {
        "method": result.method,
        "k": result.k,
        "epsilon": result.epsilon,
        "itemsets": [
            {
                "items": list(entry.itemset),
                "noisy_count": entry.noisy_count,
                "noisy_frequency": entry.noisy_frequency,
            }
            for entry in result.itemsets
        ],
    }
    if result.snapshot_version is not None:
        payload["snapshot_version"] = result.snapshot_version
    return payload


def result_from_payload(
    payload: Mapping[str, Any],
    snapshot_version: Optional[int] = None,
    reuse: Optional[Dict[str, Any]] = None,
):
    """Rebuild a result object from a stored (truncated) payload.

    The session's reuse path returns the same type a fresh release
    does.  Diagnostics that belong to a mechanism *run* (trace, basis
    geometry, per-count variance) are not part of the published
    payload and come back empty — a reused answer never ran a
    mechanism.
    """
    from repro.core.result import NoisyItemset, PrivBasisResult
    from repro.datasets.transactions import canonical_itemset

    itemsets = [
        NoisyItemset(
            itemset=canonical_itemset(entry["items"]),
            noisy_count=float(entry["noisy_count"]),
            noisy_frequency=float(entry["noisy_frequency"]),
            count_variance=0.0,
        )
        for entry in payload["itemsets"]
    ]
    result = PrivBasisResult(
        itemsets=itemsets,
        k=int(payload["k"]),
        epsilon=float(payload["epsilon"]),
        method=str(payload.get("method", "privbasis")),
        snapshot_version=(
            snapshot_version
            if snapshot_version is not None
            else payload.get("snapshot_version")
        ),
        reuse=dict(reuse) if reuse is not None else None,
    )
    return result


def _dominates(a: StoredRelease, b: StoredRelease) -> bool:
    """Whether every request ``b`` can serve, ``a`` can serve too."""
    return a.k >= b.k and a.epsilon >= b.epsilon * (1 - EPSILON_RTOL)


@dataclass
class ReuseIndex:
    """Stored releases indexed by ``(dataset, snapshot_version)``.

    Each key holds a dominance frontier: an entry both smaller in
    ``k`` and poorer in ``ε`` than another serves no request the
    other cannot, so it is dropped on insertion and the index stays
    bounded regardless of traffic.  Lookups apply
    :func:`reuse_covers` and pick the *tightest* qualifying source
    (smallest ``k``, then smallest ``ε``) so a hit reveals no more of
    the stored history than the request needs.

    One index instance scopes one principal — the store keeps one per
    tenant, a session keeps its own — so tenant isolation is
    structural, not a filter.
    """

    max_entries_per_key: int = MAX_ENTRIES_PER_KEY
    _frontier: Dict[Tuple[str, int], List[StoredRelease]] = field(
        default_factory=dict
    )
    _seq: int = 0
    _invalidated: int = 0

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._frontier.values())

    def add(
        self,
        dataset: str,
        snapshot_version: Optional[int],
        payload: Mapping[str, Any],
    ) -> bool:
        """Index one released payload; returns whether it was kept.

        Payloads that do not look like releases (no positive integer
        ``k``, no positive ``epsilon``, no ``itemsets`` list) are
        ignored rather than rejected — the store feeds every record
        type through here.
        """
        k = payload.get("k")
        epsilon = payload.get("epsilon")
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            return False
        if (
            isinstance(epsilon, bool)
            or not isinstance(epsilon, (int, float))
            or not (float(epsilon) > 0)
        ):
            return False
        if not isinstance(payload.get("itemsets"), (list, tuple)):
            return False
        key = (str(dataset), int(snapshot_version or 0))
        entries = self._frontier.setdefault(key, [])
        candidate = StoredRelease(
            dataset=key[0],
            snapshot_version=key[1],
            k=k,
            epsilon=float(epsilon),
            payload=dict(payload),
            seq=self._seq,
        )
        for existing in entries:
            if _dominates(existing, candidate):
                # Nothing the new release can serve that the kept one
                # cannot (an exact duplicate lands here too: the first
                # stored copy stays, deterministically).
                return False
        entries[:] = [
            existing
            for existing in entries
            if not _dominates(candidate, existing)
        ]
        entries.append(candidate)
        self._seq += 1
        if len(entries) > self.max_entries_per_key:
            # Frontier entries are pairwise incomparable; shed the one
            # with the least coverage (smallest k, then smallest ε).
            entries.sort(key=lambda entry: (entry.k, entry.epsilon))
            del entries[0]
        return True

    def lookup(
        self,
        dataset: str,
        snapshot_version: Optional[int],
        k: int,
        epsilon: float,
    ) -> ReuseDecision:
        """Decide whether a stored release covers ``(k, ε)``."""
        key = (str(dataset), int(snapshot_version or 0))
        entries = self._frontier.get(key, ())
        if not entries:
            return ReuseDecision(
                hit=False,
                reason=(
                    f"no stored release for dataset "
                    f"{key[0]!r} at snapshot {key[1]}"
                ),
            )
        qualifying = [
            entry
            for entry in entries
            if reuse_covers(entry.k, entry.epsilon, k, epsilon)
        ]
        if not qualifying:
            identical = any(
                entry.k == k and _same_epsilon(entry.epsilon, epsilon)
                for entry in entries
            )
            if identical:
                reason = (
                    "identical (k, epsilon) re-requested: served by "
                    "a fresh run (freshness contract)"
                )
            else:
                reason = (
                    f"no stored release covers (k={k}, "
                    f"epsilon={epsilon:g})"
                )
            return ReuseDecision(hit=False, reason=reason)
        source = min(
            qualifying,
            key=lambda entry: (entry.k, entry.epsilon, entry.seq),
        )
        return ReuseDecision(
            hit=True,
            reason=(
                f"covered by stored (k={source.k}, "
                f"epsilon={source.epsilon:g}) at snapshot "
                f"{source.snapshot_version}"
            ),
            source=source,
            epsilon_saved=float(epsilon),
        )

    def invalidate_before(self, dataset: str, version: int) -> int:
        """Drop entries for ``dataset`` older than ``version``.

        Ingest advances the snapshot; entries pinned to earlier
        versions can never serve the new version (lookups key on the
        exact version), so this is memory hygiene with an exactness
        contract the property suite pins: entries at ``version`` or
        later — and other datasets' entries — survive untouched.
        Returns the number of entries dropped.
        """
        dataset = str(dataset)
        dropped = 0
        for key in [
            key
            for key in self._frontier
            if key[0] == dataset and key[1] < int(version)
        ]:
            dropped += len(self._frontier.pop(key))
        self._invalidated += dropped
        return dropped

    def stats(self) -> Dict[str, int]:
        """Index telemetry for ``/metrics`` and store stats."""
        return {
            "entries": len(self),
            "keys": len(self._frontier),
            "invalidated": self._invalidated,
        }
