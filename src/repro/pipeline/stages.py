"""The five release stages of Algorithm 3 as first-class objects.

Each :class:`Stage` declares its identity (``name``), which budget
share it draws from (``share`` — one of ``"alpha1"`` / ``"alpha2"`` /
``"alpha3"`` or ``None`` for the free stage), and whether it reads the
data (``touches_data``).  The declarations are what the dry-run plan
(:mod:`repro.pipeline.plan`) prices and what the trace
(:mod:`repro.pipeline.trace`) reports; the ``run`` methods delegate to
the proven mechanism implementations in :mod:`repro.core`, so the
pipeline adds structure without re-deriving any DP math.

Stages communicate through a mutable :class:`StageContext` — the
executor (:mod:`repro.pipeline.run`) owns the ordering, budget spends,
and branch decision, keeping each stage a pure "consume context, call
mechanism, write context" step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.basis import BasisSet, single_basis
from repro.core.basis_freq import basis_freq
from repro.core.construct_basis import construct_basis_set
from repro.core.freq_elements import get_frequent_items, get_frequent_pairs
from repro.core.lambda_select import get_lambda
from repro.core.result import PrivateFIMResult
from repro.engine.backend import CountingBackend
from repro.fim.itemsets import Itemset
from repro.pipeline.planner import SelectionAllocation

__all__ = [
    "BasisFreqStage",
    "ConstructBasis",
    "GetLambda",
    "PIPELINE_STAGES",
    "SelectItems",
    "SelectPairs",
    "Stage",
    "StageContext",
]


@dataclass
class StageContext:
    """Shared state the stages read and write, in pipeline order.

    The executor fills the static fields up front; each stage consumes
    the outputs of its predecessors and publishes its own.
    """

    backend: CountingBackend
    rng: object
    k: int
    eta: float
    single_basis_lambda: int
    max_basis_length: int
    greedy_basis_optimization: bool
    noise: str
    # Evolving pipeline state:
    lam: Optional[int] = None
    allocation: Optional[SelectionAllocation] = None
    frequent_items: List[int] = field(default_factory=list)
    frequent_pairs: Tuple[Itemset, ...] = ()
    basis_set: Optional[BasisSet] = None
    release: Optional[PrivateFIMResult] = None


class Stage(abc.ABC):
    """One step of the release pipeline.

    ``share`` names the α fraction the stage draws its ε from (``None``
    for the data-free construction step); ``touches_data`` declares
    whether ``run`` queries the counting backend — the flag the plan
    endpoint relies on to promise that dry-run pricing reads no data.
    """

    #: Stable stage identifier (plan/trace/metrics key).
    name: str = "stage"
    #: Which α fraction funds this stage (``None`` = free).
    share: Optional[str] = None
    #: Whether ``run`` reads the transaction data.
    touches_data: bool = False
    #: Human summary for plan payloads.
    summary: str = ""

    @abc.abstractmethod
    def run(self, ctx: StageContext, epsilon: float) -> None:
        """Execute the stage, spending exactly ``epsilon`` on data."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GetLambda(Stage):
    """Step 1: estimate λ via the exponential mechanism (α₁ε)."""

    name = "get_lambda"
    share = "alpha1"
    touches_data = True
    summary = "estimate lambda, the item width of the top-k"

    def run(self, ctx: StageContext, epsilon: float) -> None:
        lam = get_lambda(
            ctx.backend, ctx.k, epsilon, eta=ctx.eta, rng=ctx.rng
        )
        ctx.lam = min(lam, ctx.backend.num_items)


class SelectItems(Stage):
    """Step 2: select the λ most frequent items (item share of α₂ε)."""

    name = "select_items"
    share = "alpha2"
    touches_data = True
    summary = "select the lambda most frequent items"

    def run(self, ctx: StageContext, epsilon: float) -> None:
        ctx.frequent_items = get_frequent_items(
            ctx.backend, ctx.lam, epsilon, rng=ctx.rng
        )


class SelectPairs(Stage):
    """Step 3: select λ₂ frequent pairs (pair share of α₂ε).

    Conditional: runs only in the pairs branch (λ > threshold) and
    only when the planner allocated at least one pair.
    """

    name = "select_pairs"
    share = "alpha2"
    touches_data = True
    summary = "select lambda2 frequent pairs among the items"

    def run(self, ctx: StageContext, epsilon: float) -> None:
        pairs = get_frequent_pairs(
            ctx.backend,
            ctx.frequent_items,
            ctx.allocation.lam2,
            epsilon,
            rng=ctx.rng,
        )
        ctx.frequent_pairs = tuple(sorted(pairs))


class ConstructBasis(Stage):
    """Step 4: turn (F, P) into a basis set — no data access, no ε.

    Degenerates to the single basis ``{F}`` on the fast path
    (Proposition 2); otherwise runs the maximal-clique + greedy-EV
    constructor.
    """

    name = "construct_basis"
    share = None
    touches_data = False
    summary = "build the basis set from items and pairs (free)"

    def run(self, ctx: StageContext, epsilon: float) -> None:
        if ctx.allocation.single_basis:
            ctx.basis_set = single_basis(ctx.frequent_items)
        else:
            ctx.basis_set = construct_basis_set(
                ctx.frequent_items,
                ctx.frequent_pairs,
                ctx.max_basis_length,
                greedy_optimize=ctx.greedy_basis_optimization,
            )


class BasisFreqStage(Stage):
    """Step 5: noisy bin counts over C(B), top-k selection (α₃ε)."""

    name = "basis_freq"
    share = "alpha3"
    touches_data = True
    summary = "noisy bin counts over the basis set, pick the top k"

    def run(self, ctx: StageContext, epsilon: float) -> None:
        ctx.release = basis_freq(
            ctx.backend,
            ctx.basis_set,
            ctx.k,
            epsilon,
            rng=ctx.rng,
            noise=ctx.noise,
        )


#: The five stages in pipeline order (the plan endpoint's skeleton).
PIPELINE_STAGES: Tuple[Stage, ...] = (
    GetLambda(),
    SelectItems(),
    SelectPairs(),
    ConstructBasis(),
    BasisFreqStage(),
)
