"""The staged release pipeline: stages, budget planners, plans, traces.

This package decomposes the paper's Algorithm 3 into five
:class:`~repro.pipeline.stages.Stage` objects priced by a pluggable
:class:`~repro.pipeline.planner.BudgetPlanner` and executed under a
:class:`~repro.pipeline.plan.ReleasePlan`, producing a
:class:`~repro.pipeline.trace.ReleaseTrace` of per-stage ε, wall time,
and backend query counts.  ``docs/pipeline.md`` is the narrative
reference; :func:`repro.core.privbasis.privbasis` remains the
compatibility wrapper over the paper plan.

Quick tour::

    from repro.pipeline import build_plan, planned_release, AdaptivePlanner

    plan = build_plan(k=100, epsilon=0.5, planner="adaptive")
    print(plan.describe())                # dry-run pricing, no data
    result = planned_release(database, k=100, epsilon=0.5,
                             planner=AdaptivePlanner(), rng=7)
    print(result.trace.to_wire())         # per-stage telemetry
"""

from repro.pipeline.plan import PlannedStage, ReleasePlan, build_plan
from repro.pipeline.planner import (
    DEFAULT_ALPHAS,
    SINGLE_BASIS_LAMBDA,
    AdaptivePlanner,
    AutoPlanner,
    BudgetPlanner,
    CustomPlanner,
    PaperPlanner,
    SelectionAllocation,
    TraceHistory,
    default_eta,
    pair_budget_size,
    planner_for,
    planner_names,
    resolve_planner,
    validate_alphas,
)
from repro.pipeline.reuse import (
    ReuseDecision,
    ReuseIndex,
    StoredRelease,
    payload_from_result,
    result_from_payload,
    reuse_covers,
    top_k_truncate,
)
from repro.pipeline.run import execute_plan, planned_release
from repro.pipeline.stages import (
    PIPELINE_STAGES,
    BasisFreqStage,
    ConstructBasis,
    GetLambda,
    SelectItems,
    SelectPairs,
    Stage,
    StageContext,
)
from repro.pipeline.trace import (
    QueryCountingBackend,
    ReleaseTrace,
    StageTrace,
)

__all__ = [
    "AdaptivePlanner",
    "AutoPlanner",
    "BasisFreqStage",
    "BudgetPlanner",
    "ConstructBasis",
    "CustomPlanner",
    "DEFAULT_ALPHAS",
    "GetLambda",
    "PIPELINE_STAGES",
    "PaperPlanner",
    "PlannedStage",
    "QueryCountingBackend",
    "ReleasePlan",
    "ReleaseTrace",
    "ReuseDecision",
    "ReuseIndex",
    "SINGLE_BASIS_LAMBDA",
    "SelectItems",
    "SelectPairs",
    "SelectionAllocation",
    "Stage",
    "StageContext",
    "StageTrace",
    "StoredRelease",
    "TraceHistory",
    "build_plan",
    "default_eta",
    "execute_plan",
    "pair_budget_size",
    "payload_from_result",
    "planned_release",
    "planner_for",
    "planner_names",
    "resolve_planner",
    "result_from_payload",
    "reuse_covers",
    "top_k_truncate",
    "validate_alphas",
]
