"""Release plans — dry-run ε pricing with zero data access.

:func:`build_plan` turns ``(k, ε, planner, …)`` into a
:class:`ReleasePlan`: the five pipeline stages with the ε each will
spend, priced entirely from public parameters.  Nothing here touches a
database or a backend — that is the contract ``GET /v1/plan`` relies
on to quote a release without spending tenant budget — and the same
plan object is what the executor (:mod:`repro.pipeline.run`) then
carries into execution, so the quote and the run cannot drift.

Stage prices that depend on λ (the item/pair subdivision of α₂) are
quoted as ``epsilon: None`` with the α₂ group total exact; the trace
of an executed release reports the resolved amounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH
from repro.core.basis_freq import NOISE_KINDS
from repro.errors import ValidationError
from repro.pipeline.planner import (
    SINGLE_BASIS_LAMBDA,
    BudgetPlanner,
    PlannerSpec,
    default_eta,
    planner_for,
)
from repro.pipeline.stages import PIPELINE_STAGES, SelectPairs, Stage

__all__ = ["PlannedStage", "ReleasePlan", "build_plan"]

#: Maps a stage's declared ``share`` to its index in the α triple.
_SHARE_INDEX = {"alpha1": 0, "alpha2": 1, "alpha3": 2}


@dataclass(frozen=True)
class PlannedStage:
    """One priced pipeline stage.

    ``epsilon`` is exact when the price depends only on public
    parameters and ``None`` when the planner resolves it at run time
    from the λ estimate; ``share`` is the α fraction of the total the
    stage's group draws.
    """

    name: str
    share: Optional[float]
    epsilon: Optional[float]
    touches_data: bool
    conditional: bool
    summary: str
    note: str = ""

    def to_wire(self) -> Dict[str, object]:
        return {
            "stage": self.name,
            "share": self.share,
            "epsilon": self.epsilon,
            "touches_data": self.touches_data,
            "conditional": self.conditional,
            "summary": self.summary,
            "note": self.note,
        }


class ReleasePlan:
    """A priced, executable description of one release.

    Construction validates every public parameter (so a plan that
    prices cleanly is also runnable) and prices the stages under the
    planner's α split.  Instances are immutable in practice: the
    executor only reads them.
    """

    def __init__(
        self,
        planner: BudgetPlanner,
        k: int,
        epsilon: float,
        eta: Optional[float] = None,
        noise: str = "laplace",
        single_basis_lambda: int = SINGLE_BASIS_LAMBDA,
        max_basis_length: int = DEFAULT_MAX_BASIS_LENGTH,
        greedy_basis_optimization: bool = True,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        epsilon = float(epsilon)
        if not (0 < epsilon < float("inf")):
            raise ValidationError(
                f"epsilon must be positive and finite, got {epsilon!r}"
            )
        if eta is None:
            eta = default_eta(k)
        if eta < 1.0:
            raise ValidationError(f"eta must be >= 1, got {eta}")
        if noise not in NOISE_KINDS:
            raise ValidationError(
                f"noise must be one of {NOISE_KINDS}, got {noise!r}"
            )
        if single_basis_lambda < 0:
            raise ValidationError(
                f"single_basis_lambda must be >= 0, "
                f"got {single_basis_lambda}"
            )
        self.planner = planner
        self.k = int(k)
        self.epsilon = epsilon
        self.eta = float(eta)
        self.noise = noise
        self.single_basis_lambda = int(single_basis_lambda)
        self.max_basis_length = int(max_basis_length)
        self.greedy_basis_optimization = bool(greedy_basis_optimization)
        self.stages: List[PlannedStage] = [
            self._price(stage) for stage in PIPELINE_STAGES
        ]

    def _price(self, stage: Stage) -> PlannedStage:
        notes = self.planner.stage_notes()
        if stage.share is None:
            share = None
            priced = 0.0
        else:
            share = self.planner.alphas[_SHARE_INDEX[stage.share]]
            # The α₂ item/pair subdivision is resolved at run time
            # from the λ estimate; only SelectItems carries the group
            # share so shares sum to 1 across the plan.
            priced = None if stage.share == "alpha2" else share * self.epsilon
            if isinstance(stage, SelectPairs):
                share = None
        return PlannedStage(
            name=stage.name,
            share=share,
            epsilon=priced,
            touches_data=stage.touches_data,
            conditional=isinstance(stage, SelectPairs),
            summary=stage.summary,
            note=notes.get(stage.name, ""),
        )

    def describe(self) -> Dict[str, object]:
        """The ``GET /v1/plan`` payload (JSON-serializable)."""
        return {
            "planner": self.planner.describe(),
            "k": self.k,
            "epsilon": self.epsilon,
            "eta": self.eta,
            "noise": self.noise,
            "single_basis_lambda": self.single_basis_lambda,
            "max_basis_length": self.max_basis_length,
            "stages": [stage.to_wire() for stage in self.stages],
        }

    def __repr__(self) -> str:
        return (
            f"ReleasePlan(planner={self.planner.name!r}, k={self.k}, "
            f"epsilon={self.epsilon:g})"
        )


def build_plan(
    k: int,
    epsilon: float,
    planner: PlannerSpec = None,
    eta: Optional[float] = None,
    noise: str = "laplace",
    single_basis_lambda: int = SINGLE_BASIS_LAMBDA,
    max_basis_length: int = DEFAULT_MAX_BASIS_LENGTH,
    greedy_basis_optimization: bool = True,
    alphas=None,
) -> ReleasePlan:
    """Price a release without touching any data.

    ``planner`` accepts everything
    :func:`~repro.pipeline.planner.resolve_planner` does; ``alphas``
    is the legacy shorthand for a custom split (mutually exclusive
    with ``planner``).
    """
    return ReleasePlan(
        planner_for(planner, alphas),
        k=k,
        epsilon=epsilon,
        eta=eta,
        noise=noise,
        single_basis_lambda=single_basis_lambda,
        max_basis_length=max_basis_length,
        greedy_basis_optimization=greedy_basis_optimization,
    )
