"""Budget planners — policies that price a release before it runs.

The paper's Algorithm 3 splits the release budget ε as
α₁/α₂/α₃ = 0.1/0.4/0.5 across its stages, then subdivides the α₂
selection budget λ:λ₂ between items and pairs once λ is known.  A
:class:`BudgetPlanner` owns both decisions:

* :attr:`BudgetPlanner.alphas` — the (α₁, α₂, α₃) stage fractions,
  validated once here instead of ad hoc inside ``privbasis()``;
* :meth:`BudgetPlanner.selection_allocation` — how the α₂ε selection
  budget is divided between items and pairs (and, for the adaptive
  policy, how much of it is returned to counting) given the λ
  estimate.

λ is itself the output of an ε-DP mechanism, so conditioning later
stage budgets on it is post-processing: any planner keeps the release
ε-DP by sequential composition as long as the realized spends sum to
at most ε (see ``docs/privacy-accounting.md``).

Three built-in policies:

* :class:`PaperPlanner` — the paper's untuned split, bit-for-bit
  identical to the pre-pipeline ``privbasis()`` under a fixed seed;
* :class:`CustomPlanner` — user-chosen α fractions, paper λ:λ₂
  subdivision;
* :class:`AdaptivePlanner` — reallocates the α₂ budget from the λ
  estimate (pairs weighted up in the pairs branch, unused selection
  budget returned to counting in the single-basis branch).
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import UnknownPlannerError, ValidationError

__all__ = [
    "DEFAULT_ALPHAS",
    "SINGLE_BASIS_LAMBDA",
    "AdaptivePlanner",
    "AutoPlanner",
    "BudgetPlanner",
    "CustomPlanner",
    "PaperPlanner",
    "SelectionAllocation",
    "TraceHistory",
    "default_eta",
    "pair_budget_size",
    "planner_for",
    "planner_names",
    "resolve_planner",
    "validate_alphas",
]

#: Budget fractions (α₁, α₂, α₃) — the paper's untuned default.
DEFAULT_ALPHAS: Tuple[float, float, float] = (0.1, 0.4, 0.5)

#: λ at or below which a single basis of the λ most frequent items is
#: used (paper Section 4.4: "Step 3 is needed only when λ > 12").
SINGLE_BASIS_LAMBDA = 12


def default_eta(k: int) -> float:
    """The paper's safety margin: 1.1 or 1.2 "depending on k".

    Small k leaves more room for the relative inflation, so we use 1.2
    up to k = 100 and 1.1 beyond.
    """
    return 1.2 if k <= 100 else 1.1


def pair_budget_size(lam: int, k: int, eta: float) -> int:
    """The paper's λ₂ heuristic (Section 4.4).

    ``λ₂' = η·k − λ`` damped by ``√max(1, λ₂'/λ)``: when far more pairs
    than items would be requested, most of the top-k are actually
    deeper itemsets over few items, so fewer explicit pairs suffice
    (worked example in the paper: pumsb-star, λ = 20 → λ₂ = 44).
    """
    lam2_raw = eta * k - lam
    if lam2_raw <= 0:
        return 0
    damped = lam2_raw / math.sqrt(max(1.0, lam2_raw / lam))
    # Floor, not round: the paper's worked example (λ = 20, k = 100,
    # η = 1.2 → λ₂ = 44) implies ⌊100/√5⌋ = 44.
    return max(1, int(damped))


def validate_alphas(
    alphas: Iterable[float],
) -> Tuple[float, float, float]:
    """Validate (α₁, α₂, α₃) fractions: three, positive, summing to 1.

    This is the single home of the alpha checks that used to live
    inside ``privbasis()``; planners call it at construction so a bad
    split fails before any plan is priced or data touched.
    """
    alphas = tuple(float(alpha) for alpha in alphas)
    if len(alphas) != 3:
        raise ValidationError(
            f"alphas must have 3 entries, got {alphas!r}"
        )
    if any(not (alpha > 0) or math.isinf(alpha) for alpha in alphas):
        raise ValidationError(
            f"all alphas must be positive and finite, got {alphas!r}"
        )
    if abs(math.fsum(alphas) - 1.0) > 1e-9:
        raise ValidationError(
            f"alphas must sum to 1, got {alphas!r} "
            f"(sum {math.fsum(alphas):g})"
        )
    return alphas


@dataclass(frozen=True)
class SelectionAllocation:
    """How one release divides its α₂ε selection budget, given λ.

    ``items_epsilon`` funds the item selection (always runs),
    ``pairs_epsilon`` the pair selection (only when ``lam2 >= 1`` in
    the pairs branch), and ``counting_bonus`` is selection budget the
    planner hands forward to the BasisFreq counting stage instead.
    The three always sum to exactly the α₂ε the planner was given, so
    the release ledger totals ε regardless of policy.
    """

    single_basis: bool
    items_epsilon: float
    pairs_epsilon: float
    lam2: int
    counting_bonus: float = 0.0
    note: str = ""


class BudgetPlanner(abc.ABC):
    """A pricing policy for the five-stage release pipeline.

    Subclasses set :attr:`name` (the wire/CLI identifier) and
    implement :meth:`selection_allocation`; the α fractions are
    validated once at construction.
    """

    #: Stable identifier used on the wire and in traces.
    name: str = "planner"

    def __init__(
        self, alphas: Tuple[float, float, float] = DEFAULT_ALPHAS
    ) -> None:
        self._alphas = validate_alphas(alphas)

    @property
    def alphas(self) -> Tuple[float, float, float]:
        """The validated (α₁, α₂, α₃) stage fractions."""
        return self._alphas

    @abc.abstractmethod
    def selection_allocation(
        self,
        lam: int,
        k: int,
        eta: float,
        alpha2_epsilon: float,
        single_basis_lambda: int,
    ) -> SelectionAllocation:
        """Divide the α₂ε selection budget once λ is known.

        Called exactly once per release, after GetLambda and before
        any selection draws; λ is a DP output, so the division is
        post-processing.
        """

    def stage_notes(self) -> Dict[str, str]:
        """Per-stage pricing notes for the dry-run plan display."""
        return {
            "select_items": (
                "receives all of alpha2 when lambda <= threshold; "
                "otherwise alpha2 is split items:pairs as lambda:lambda2"
            ),
            "select_pairs": "runs only when lambda > threshold",
        }

    def describe(self) -> Dict[str, object]:
        """JSON-serializable identity for plan/trace payloads."""
        return {"name": self.name, "alphas": list(self._alphas)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(alphas={self._alphas!r})"


class CustomPlanner(BudgetPlanner):
    """User-chosen α fractions with the paper's λ:λ₂ subdivision."""

    name = "custom"

    def selection_allocation(
        self,
        lam: int,
        k: int,
        eta: float,
        alpha2_epsilon: float,
        single_basis_lambda: int,
    ) -> SelectionAllocation:
        if lam <= single_basis_lambda:
            return SelectionAllocation(
                single_basis=True,
                items_epsilon=alpha2_epsilon,
                pairs_epsilon=0.0,
                lam2=0,
                note="single-basis fast path: all of alpha2 to items",
            )
        lam2 = pair_budget_size(lam, k, eta)
        available_pairs = lam * (lam - 1) // 2
        lam2 = min(lam2, available_pairs)
        if lam2 >= 1:
            # Expression kept verbatim from the pre-pipeline
            # privbasis() so PaperPlanner releases stay bit-identical.
            beta1_eps = alpha2_epsilon * lam / (lam + lam2)
            beta2_eps = alpha2_epsilon - beta1_eps
        else:
            beta1_eps, beta2_eps = alpha2_epsilon, 0.0
        return SelectionAllocation(
            single_basis=False,
            items_epsilon=beta1_eps,
            pairs_epsilon=beta2_eps,
            lam2=lam2,
            note=f"paper split lambda:lambda2 = {lam}:{lam2}",
        )


class PaperPlanner(CustomPlanner):
    """The paper's untuned α₁/α₂/α₃ = 0.1/0.4/0.5 split.

    Takes no arguments; releases planned by it are bit-for-bit
    identical (itemsets, frequencies, ledger entries) to the
    pre-pipeline monolithic ``privbasis()`` under a fixed seed, which
    the golden equivalence suite pins.
    """

    name = "paper"

    def __init__(self) -> None:
        super().__init__(DEFAULT_ALPHAS)


class AdaptivePlanner(BudgetPlanner):
    """Reallocate the α₂ selection budget from the λ estimate.

    Two deviations from the paper split, both post-processing of the
    DP λ release:

    * **Single-basis branch** (λ ≤ threshold): the selection task
      shrank from ~η·k draws to λ draws, so paying it all of α₂ε
      over-funds it.  Items are paid at the *paper* pairs-branch
      per-draw rate — ``α₂ε · λ / (λ + λ₂)`` with λ₂ the paper
      heuristic, deliberately unweighted since no pairs are selected
      here — and the remainder moves to the BasisFreq counting stage,
      where extra ε directly shrinks bin noise.
    * **Pairs branch**: pair supports are bounded by the smaller of
      their items' supports, so the exponential mechanism separates
      pairs with systematically smaller quality gaps.  Pair draws are
      weighted twice as heavily as item draws
      (``β₁:β₂ = λ:2λ₂`` instead of λ:λ₂).

    The α fractions themselves default to the paper's and may be
    overridden (``AdaptivePlanner(alphas=(0.1, 0.3, 0.6))``).
    """

    name = "adaptive"

    #: Per-draw weight of a pair selection relative to an item one.
    PAIR_WEIGHT = 2.0

    def selection_allocation(
        self,
        lam: int,
        k: int,
        eta: float,
        alpha2_epsilon: float,
        single_basis_lambda: int,
    ) -> SelectionAllocation:
        lam2 = pair_budget_size(lam, k, eta)
        available_pairs = lam * (lam - 1) // 2
        lam2 = min(lam2, available_pairs)
        if lam <= single_basis_lambda:
            if lam2 >= 1:
                items_eps = alpha2_epsilon * lam / (lam + lam2)
            else:
                items_eps = alpha2_epsilon
            bonus = alpha2_epsilon - items_eps
            return SelectionAllocation(
                single_basis=True,
                items_epsilon=items_eps,
                pairs_epsilon=0.0,
                lam2=0,
                counting_bonus=bonus,
                note=(
                    f"single-basis fast path: {bonus:g} of alpha2*eps "
                    f"moved to counting"
                ),
            )
        if lam2 >= 1:
            weighted = lam + self.PAIR_WEIGHT * lam2
            beta1_eps = alpha2_epsilon * lam / weighted
            beta2_eps = alpha2_epsilon - beta1_eps
        else:
            beta1_eps, beta2_eps = alpha2_epsilon, 0.0
        return SelectionAllocation(
            single_basis=False,
            items_epsilon=beta1_eps,
            pairs_epsilon=beta2_eps,
            lam2=lam2,
            note=(
                f"adaptive split lambda:{self.PAIR_WEIGHT:g}*lambda2 "
                f"= {lam}:{self.PAIR_WEIGHT * lam2:g}"
            ),
        )

    def stage_notes(self) -> Dict[str, str]:
        return {
            "select_items": (
                "alpha2 split items:pairs as lambda:2*lambda2; in the "
                "single-basis regime the unused share moves to counting"
            ),
            "select_pairs": "runs only when lambda > threshold",
            "basis_freq": (
                "may receive the unused share of alpha2 when the "
                "single-basis fast path is taken"
            ),
        }


class TraceHistory:
    """A bounded record of which pipeline branch served releases.

    Fed one :class:`~repro.pipeline.trace.ReleaseTrace` per release
    (``observe``); only the branch — ``"single_basis"`` or
    ``"pairs"`` — is retained, and only the most recent
    ``maxlen`` observations, so a long-lived dataset's history tracks
    the data it serves *now*.  The branch is itself a published DP
    output (λ crossed the threshold or it did not), so conditioning a
    later release's planner on it is post-processing.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValidationError(
                f"maxlen must be >= 1, got {maxlen}"
            )
        self._branches: Deque[str] = deque(maxlen=maxlen)

    def observe(self, trace) -> None:
        """Fold one release trace (or ``None``) into the history."""
        branch = getattr(trace, "branch", "")
        if branch:
            self._branches.append(str(branch))

    def __len__(self) -> int:
        return len(self._branches)

    def counts(self) -> Dict[str, int]:
        """Observed branch tallies, e.g. ``{"single_basis": 12}``."""
        tally: Dict[str, int] = {}
        for branch in self._branches:
            tally[branch] = tally.get(branch, 0) + 1
        return tally

    def suggest(self) -> str:
        """The policy the accumulated telemetry argues for.

        ``"paper"`` with no history (the pinned cold-start fallback:
        an :class:`AutoPlanner` over an empty history is bit-identical
        to :class:`PaperPlanner`).  Once a strict majority of observed
        releases took the single-basis branch, ``"adaptive"`` — its
        single-basis reallocation moves the over-funded selection
        budget into counting, which is exactly where this workload
        spends its ε.  Otherwise ``"paper"``: in the pairs regime the
        paper split is the tuned, equivalence-pinned default.
        """
        if not self._branches:
            return "paper"
        single = sum(
            1 for branch in self._branches if branch == "single_basis"
        )
        if 2 * single > len(self._branches):
            return "adaptive"
        return "paper"


class AutoPlanner(BudgetPlanner):
    """Pick paper vs adaptive from accumulated release telemetry.

    Bound to a per-dataset :class:`TraceHistory` by the serving layer
    (:meth:`bind`); each pricing decision delegates to the planner
    :meth:`TraceHistory.suggest` names at that moment.  Unbound — or
    bound to an empty history — it *is* the paper planner: the golden
    equivalence suite pins cold-start bit-identity.

    The α fractions are fixed at the paper split (both delegates use
    it); policies that want custom fractions are spelled explicitly
    via ``custom`` / ``adaptive``.
    """

    name = "auto"

    def __init__(self, history: Optional[TraceHistory] = None) -> None:
        super().__init__(DEFAULT_ALPHAS)
        self._history = history

    @property
    def history(self) -> Optional[TraceHistory]:
        """The bound telemetry source, if any."""
        return self._history

    def bind(self, history: TraceHistory) -> "AutoPlanner":
        """Attach the per-dataset history; returns ``self``."""
        self._history = history
        return self

    def chosen(self) -> str:
        """The delegate the current history selects."""
        if self._history is None:
            return "paper"
        return self._history.suggest()

    def _delegate(self) -> BudgetPlanner:
        return (
            AdaptivePlanner()
            if self.chosen() == "adaptive"
            else PaperPlanner()
        )

    def selection_allocation(
        self,
        lam: int,
        k: int,
        eta: float,
        alpha2_epsilon: float,
        single_basis_lambda: int,
    ) -> SelectionAllocation:
        return self._delegate().selection_allocation(
            lam, k, eta, alpha2_epsilon, single_basis_lambda
        )

    def stage_notes(self) -> Dict[str, str]:
        return self._delegate().stage_notes()

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["policy"] = self.chosen()
        description["observed"] = (
            self._history.counts() if self._history is not None else {}
        )
        return description


#: Planner names resolvable on the wire / CLI.  ``custom`` needs an
#: explicit ``alphas`` argument, so a bare ``"custom"`` string is
#: rejected with guidance.
_PLANNERS = {
    "paper": PaperPlanner,
    "custom": CustomPlanner,
    "adaptive": AdaptivePlanner,
    "auto": AutoPlanner,
}

PlannerSpec = Union[None, str, Mapping[str, object], BudgetPlanner]


def planner_names() -> Tuple[str, ...]:
    """The resolvable planner names, for error messages and docs."""
    return tuple(sorted(_PLANNERS))


def resolve_planner(spec: PlannerSpec = None) -> BudgetPlanner:
    """Coerce a planner spec into a :class:`BudgetPlanner`.

    Accepts ``None`` (the paper plan), a ready planner instance, a
    name (``"paper"`` / ``"adaptive"``), or a mapping like
    ``{"name": "custom", "alphas": [0.1, 0.3, 0.6]}`` — the shape the
    service wire and CLI hand over.  Unknown names raise
    :class:`~repro.errors.UnknownPlannerError` (wire code
    ``unknown_planner``).
    """
    if spec is None:
        return PaperPlanner()
    if isinstance(spec, BudgetPlanner):
        return spec
    if isinstance(spec, str):
        return _resolve_named(spec, alphas=None)
    if isinstance(spec, Mapping):
        unknown = set(spec) - {"name", "alphas"}
        if unknown:
            raise ValidationError(
                f"unknown planner spec keys {sorted(unknown)}; "
                f"allowed: ['name', 'alphas']"
            )
        name = spec.get("name")
        if not isinstance(name, str):
            raise ValidationError(
                f"planner spec needs a 'name' string, got {name!r}"
            )
        alphas = spec.get("alphas")
        if alphas is not None:
            if isinstance(alphas, (str, bytes)) or not hasattr(
                alphas, "__iter__"
            ):
                raise ValidationError(
                    f"planner 'alphas' must be a list of 3 numbers, "
                    f"got {alphas!r}"
                )
            alphas = tuple(alphas)
        return _resolve_named(name, alphas=alphas)
    raise ValidationError(
        f"planner must be a name, mapping, or BudgetPlanner, "
        f"got {type(spec).__name__}"
    )


def _resolve_named(
    name: str, alphas: Optional[Tuple[float, ...]]
) -> BudgetPlanner:
    factory = _PLANNERS.get(name)
    if factory is None:
        raise UnknownPlannerError(name, planner_names())
    if factory is PaperPlanner:
        if alphas is not None and tuple(alphas) != DEFAULT_ALPHAS:
            raise ValidationError(
                "the paper planner's alphas are fixed at "
                f"{DEFAULT_ALPHAS}; use 'custom' to choose your own"
            )
        return PaperPlanner()
    if factory is AutoPlanner:
        if alphas is not None and tuple(alphas) != DEFAULT_ALPHAS:
            raise ValidationError(
                "the auto planner keeps the paper alphas and only "
                "picks between paper and adaptive; use 'custom' or "
                "'adaptive' to choose your own fractions"
            )
        return AutoPlanner()
    if factory is CustomPlanner and alphas is None:
        raise ValidationError(
            "the custom planner needs explicit alphas, e.g. "
            "{'name': 'custom', 'alphas': [0.1, 0.3, 0.6]}"
        )
    if alphas is None:
        return factory()
    return factory(alphas)


def planner_for(
    planner: PlannerSpec = None,
    alphas: Optional[Tuple[float, ...]] = None,
) -> BudgetPlanner:
    """Resolve the ``(planner, alphas)`` calling convention.

    ``alphas`` is the legacy ``privbasis(alphas=...)`` keyword: alone
    it builds a :class:`CustomPlanner` (or the paper planner when it
    equals the paper split); combined with an explicit planner it is
    ambiguous and rejected.
    """
    if planner is not None and alphas is not None:
        raise ValidationError(
            "pass either planner= or alphas=, not both (a planner "
            "already owns its alpha split)"
        )
    if planner is None and alphas is not None:
        if tuple(float(alpha) for alpha in alphas) == DEFAULT_ALPHAS:
            return PaperPlanner()
        return CustomPlanner(tuple(alphas))
    return resolve_planner(planner)
