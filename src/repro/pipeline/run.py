"""The pipeline executor: run a priced plan against a backend.

:func:`execute_plan` walks the staged release in order — GetLambda,
the planner's selection allocation, SelectItems, (conditionally)
SelectPairs, ConstructBasis, BasisFreq — spending the plan's ε through
a :class:`~repro.dp.budget.PrivacyBudget` ledger and recording a
:class:`~repro.pipeline.trace.ReleaseTrace` as it goes.  The ledger
labels and the mechanism call sequence are byte-compatible with the
pre-pipeline monolithic ``privbasis()``: under :class:`PaperPlanner`
and a fixed seed the outputs are bit-identical (pinned by the golden
equivalence suite).

:func:`planned_release` is the one-call convenience the compatibility
wrapper (:func:`repro.core.privbasis.privbasis`), the serving session,
and the service all route through.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.result import PrivBasisResult
from repro.dp.budget import PrivacyBudget
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.pipeline.plan import ReleasePlan, build_plan
from repro.pipeline.planner import PlannerSpec
from repro.pipeline.stages import (
    BasisFreqStage,
    ConstructBasis,
    GetLambda,
    SelectItems,
    SelectPairs,
    Stage,
    StageContext,
)
from repro.pipeline.trace import (
    QueryCountingBackend,
    ReleaseTrace,
    StageTrace,
)

__all__ = ["execute_plan", "planned_release"]

#: Ledger labels per stage — fixed across planners so budget audits
#: read the same regardless of policy (and identical to the
#: pre-pipeline monolith's entries).
_LEDGER_LABELS = {
    "get_lambda": "get_lambda",
    "select_items": "get_frequent_items",
    "select_pairs": "get_frequent_pairs",
    "basis_freq": "basis_freq",
}


def execute_plan(
    plan: ReleasePlan,
    database,
    backend: Optional[CountingBackend] = None,
    rng: RngLike = None,
) -> PrivBasisResult:
    """Run ``plan`` against ``database`` and return the release.

    ``database`` / ``backend`` follow the library-wide convention of
    :func:`~repro.engine.backend.resolve_backend` (a backend may also
    be passed positionally).  Every release draws its randomness from
    ``rng`` in stage order, spends exactly ``plan.epsilon`` in total,
    and carries its :class:`~repro.pipeline.trace.ReleaseTrace` on
    ``result.trace``.
    """
    planner = plan.planner
    counting = QueryCountingBackend(resolve_backend(database, backend))
    generator = ensure_rng(rng)
    budget = PrivacyBudget(plan.epsilon)
    alpha1_eps, alpha2_eps, alpha3_eps = budget.split(planner.alphas)

    ctx = StageContext(
        backend=counting,
        rng=generator,
        k=plan.k,
        eta=plan.eta,
        single_basis_lambda=plan.single_basis_lambda,
        max_basis_length=plan.max_basis_length,
        greedy_basis_optimization=plan.greedy_basis_optimization,
        noise=plan.noise,
    )
    trace = ReleaseTrace(
        planner=planner.name,
        epsilon=plan.epsilon,
        k=plan.k,
        eta=plan.eta,
        noise=plan.noise,
    )

    def run_stage(stage: Stage, epsilon: float, note: str = "") -> None:
        before = counting.counts()
        started = time.perf_counter()
        stage.run(ctx, epsilon)
        elapsed = time.perf_counter() - started
        if epsilon > 0:
            budget.spend(epsilon, _LEDGER_LABELS[stage.name])
        after = counting.counts()
        queries = {
            kind: count - before.get(kind, 0)
            for kind, count in after.items()
            if count - before.get(kind, 0) > 0
        }
        trace.stages.append(
            StageTrace(
                name=stage.name,
                epsilon=float(epsilon),
                touches_data=stage.touches_data,
                wall_time_s=elapsed,
                queries=queries,
                note=note,
            )
        )

    run_stage(GetLambda(), alpha1_eps)
    allocation = planner.selection_allocation(
        ctx.lam,
        plan.k,
        plan.eta,
        alpha2_eps,
        plan.single_basis_lambda,
    )
    ctx.allocation = allocation
    trace.lam = ctx.lam
    trace.branch = "single_basis" if allocation.single_basis else "pairs"

    run_stage(SelectItems(), allocation.items_epsilon, note=allocation.note)
    if not allocation.single_basis and allocation.lam2 >= 1:
        run_stage(
            SelectPairs(),
            allocation.pairs_epsilon,
            note=f"lambda2 = {allocation.lam2}",
        )
    run_stage(ConstructBasis(), 0.0)
    basis_note = (
        f"includes {allocation.counting_bonus:g} reallocated from alpha2"
        if allocation.counting_bonus > 0
        else ""
    )
    run_stage(
        BasisFreqStage(),
        alpha3_eps + allocation.counting_bonus,
        note=basis_note,
    )
    budget.assert_within_budget()

    return PrivBasisResult(
        itemsets=ctx.release.itemsets,
        k=plan.k,
        epsilon=plan.epsilon,
        method="privbasis",
        lam=ctx.lam,
        frequent_items=tuple(sorted(ctx.frequent_items)),
        frequent_pairs=tuple(ctx.frequent_pairs),
        basis_set=ctx.basis_set,
        budget=budget,
        trace=trace,
    )


def planned_release(
    database,
    k: int,
    epsilon: float,
    planner: PlannerSpec = None,
    eta: Optional[float] = None,
    alphas=None,
    max_basis_length: Optional[int] = None,
    single_basis_lambda: Optional[int] = None,
    greedy_basis_optimization: bool = True,
    noise: str = "laplace",
    rng: RngLike = None,
    backend: Optional[CountingBackend] = None,
) -> PrivBasisResult:
    """Plan and execute one ε-DP top-``k`` release.

    The planner-aware entry point: everything
    :func:`repro.core.privbasis.privbasis` accepts plus ``planner``
    (a name, spec mapping, or :class:`BudgetPlanner` instance).
    """
    from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH
    from repro.pipeline.planner import SINGLE_BASIS_LAMBDA

    plan = build_plan(
        k,
        epsilon,
        planner=planner,
        eta=eta,
        alphas=alphas,
        noise=noise,
        single_basis_lambda=(
            SINGLE_BASIS_LAMBDA
            if single_basis_lambda is None
            else single_basis_lambda
        ),
        max_basis_length=(
            DEFAULT_MAX_BASIS_LENGTH
            if max_basis_length is None
            else max_basis_length
        ),
        greedy_basis_optimization=greedy_basis_optimization,
    )
    return execute_plan(plan, database, backend=backend, rng=rng)
