"""The exponential mechanism (paper Section 2.1).

Given a quality function ``q`` with global sensitivity ``GS_q``,
returning outcome ``r`` with probability proportional to
``exp(ε · q(D, r) / (2 · GS_q))`` satisfies ε-DP.  When a change of one
tuple can move all qualities only in one direction (the *one-sided*
condition the paper highlights), the factor 2 can be dropped, doubling
the effective exponent.

Implementation notes
--------------------
* Sampling is done in **log-space** via the Gumbel-max trick: the
  exponents in this paper are as large as ``ε·N`` (≈ 10⁶), so forming
  ``exp(score)`` directly would overflow.  ``argmax(score + Gumbel)``
  samples exactly the same distribution without ever exponentiating.
* Sampling *k* outcomes **without replacement**, each step an
  exponential mechanism over the remaining outcomes with unchanged
  qualities (paper's GetFreqElements), is exactly the Plackett–Luce
  process, which the Gumbel **top-k** trick samples in one shot: perturb
  every score once, take the k largest.
"""

from __future__ import annotations

import numpy as np

from repro.dp.rng import RngLike, ensure_rng
from repro.errors import EmptySelectionError, ValidationError


def em_scores(
    qualities: np.ndarray,
    epsilon: float,
    sensitivity: float,
    one_sided: bool = False,
) -> np.ndarray:
    """Return the log-probability scores (up to an additive constant).

    ``score_r = ε · q_r / (c · GS_q)`` with ``c = 1`` if ``one_sided``
    else ``c = 2``.
    """
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon!r}")
    if not (sensitivity > 0):
        raise ValidationError(
            f"sensitivity must be positive, got {sensitivity!r}"
        )
    qualities = np.asarray(qualities, dtype=float)
    if qualities.ndim != 1:
        raise ValidationError(
            f"qualities must be a 1-D array, got shape {qualities.shape}"
        )
    divisor = 1.0 if one_sided else 2.0
    return qualities * (epsilon / (divisor * sensitivity))


def exponential_mechanism(
    qualities: np.ndarray,
    epsilon: float,
    sensitivity: float,
    one_sided: bool = False,
    rng: RngLike = None,
) -> int:
    """Sample one index with probability ∝ exp(ε·q/(c·GS)).

    Returns the selected index into ``qualities``.
    """
    scores = em_scores(qualities, epsilon, sensitivity, one_sided)
    if scores.size == 0:
        raise EmptySelectionError("cannot select from an empty domain")
    generator = ensure_rng(rng)
    gumbel = generator.gumbel(size=scores.shape)
    return int(np.argmax(scores + gumbel))


def exponential_mechanism_top_k(
    qualities: np.ndarray,
    k: int,
    epsilon_total: float,
    sensitivity: float,
    one_sided: bool = False,
    rng: RngLike = None,
) -> list[int]:
    """Sample ``k`` indices without replacement, ε_total split evenly.

    Each of the ``k`` sequential draws is an exponential mechanism with
    budget ``ε_total / k`` over the remaining indices (qualities fixed),
    exactly as in the paper's GetFreqElements.  By sequential
    composition the whole selection is ``ε_total``-DP.  Implemented via
    the Gumbel top-k trick, which samples the identical joint
    distribution in one vectorized pass.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k!r}")
    scores = em_scores(
        qualities, epsilon_total / k, sensitivity, one_sided
    )
    if scores.size < k:
        raise EmptySelectionError(
            f"cannot select {k} distinct outcomes from a domain of "
            f"size {scores.size}"
        )
    generator = ensure_rng(rng)
    gumbel = generator.gumbel(size=scores.shape)
    perturbed = scores + gumbel
    top = np.argpartition(-perturbed, k - 1)[:k]
    order = np.argsort(-perturbed[top], kind="stable")
    return [int(index) for index in top[order]]


def em_probabilities(
    qualities: np.ndarray,
    epsilon: float,
    sensitivity: float,
    one_sided: bool = False,
) -> np.ndarray:
    """Exact selection probabilities (normalized, computed stably).

    Exposed for tests and for the TF baseline's aggregate-group
    bookkeeping; not needed on the sampling hot path.
    """
    scores = em_scores(qualities, epsilon, sensitivity, one_sided)
    if scores.size == 0:
        raise EmptySelectionError("cannot normalize an empty domain")
    shifted = scores - np.max(scores)
    weights = np.exp(shifted)
    return weights / weights.sum()
