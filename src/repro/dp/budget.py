"""Privacy-budget accounting under sequential composition.

Differential privacy composes additively: running mechanisms that are
ε₁-, ε₂-, …-DP on the same data yields a (Σεᵢ)-DP pipeline (paper
Section 2.1).  :class:`PrivacyBudget` makes that bookkeeping explicit —
each mechanism invocation *spends* part of the budget, and overdrafts
raise :class:`~repro.errors.BudgetExceededError` instead of silently
weakening the guarantee.

The PrivBasis pipeline (paper Algorithm 3) splits its budget as
α₁ε / α₂ε / α₃ε across its steps; :meth:`PrivacyBudget.split` expresses
exactly that pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import (
    BudgetExceededError,
    InvalidFractionsError,
    ValidationError,
)

#: Relative tolerance used when checking for overdrafts, so that exact
#: splits like ``0.1 + 0.4 + 0.5`` do not fail on float rounding.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class BudgetEntry:
    """A single recorded expenditure: ``(label, epsilon)``."""

    label: str
    epsilon: float


@dataclass
class PrivacyBudget:
    """Tracks ε expenditure for one differentially private task.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the task.  Must be positive and finite;
        use :meth:`PrivacyBudget.unlimited` for non-private debugging
        runs (ε = +inf, spends always succeed).
    """

    epsilon: float
    _entries: List[BudgetEntry] = field(default_factory=list, repr=False)
    #: Optional write-ahead journal hook, ``(label, epsilon) -> None``.
    #: Invoked by :meth:`spend` *after* the overdraft check passes but
    #: *before* the entry is recorded in memory, so a durable ledger
    #: (see :class:`repro.store.ledger.LedgerJournal`) observes every
    #: debit no later than the in-memory state does.  A hook that
    #: raises aborts the spend with nothing recorded.
    _journal: Optional[Callable[[str, float], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not (self.epsilon > 0):
            raise ValidationError(
                f"epsilon must be positive, got {self.epsilon!r}"
            )

    @classmethod
    def unlimited(cls) -> "PrivacyBudget":
        """A budget that never runs out (for testing / ε → ∞ baselines)."""
        return cls(math.inf)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def spent(self) -> float:
        """Total ε consumed so far (sequential composition)."""
        return math.fsum(entry.epsilon for entry in self._entries)

    @property
    def remaining(self) -> float:
        """Budget still available; never negative."""
        return max(0.0, self.epsilon - self.spent)

    @property
    def entries(self) -> Tuple[BudgetEntry, ...]:
        """Immutable view of the expenditure ledger, in spend order."""
        return tuple(self._entries)

    def spend(self, epsilon: float, label: str = "") -> float:
        """Consume ``epsilon`` from the budget and return it.

        Raises
        ------
        ValidationError
            If ``epsilon`` is not positive.
        BudgetExceededError
            If the spend would overdraw the budget (beyond a small
            relative tolerance for float rounding).
        """
        if not (epsilon > 0):
            raise ValidationError(
                f"spend amount must be positive, got {epsilon!r}"
            )
        if not math.isinf(self.epsilon):
            tolerance = _REL_TOL * self.epsilon
            if epsilon > self.remaining + tolerance:
                raise BudgetExceededError(epsilon, self.remaining)
        if self._journal is not None:
            # Write-ahead: the durable journal records the debit
            # before the in-memory ledger does.  If journaling fails
            # the spend never happened — the caller sees the error
            # and no noisy answer is produced against this charge.
            self._journal(label, float(epsilon))
        self._entries.append(BudgetEntry(label, float(epsilon)))
        return float(epsilon)

    def attach_journal(
        self, journal: Optional[Callable[[str, float], None]]
    ) -> None:
        """Install (or clear, with ``None``) the write-ahead hook.

        The hook receives ``(label, epsilon)`` for every successful
        :meth:`spend`, before the entry lands in memory.  Restored
        entries (:meth:`restore_entries`) deliberately bypass it —
        they came *from* the journal.
        """
        if journal is not None and not callable(journal):
            raise ValidationError(
                f"journal hook must be callable, got {journal!r}"
            )
        self._journal = journal

    def restore_entries(
        self, entries: Iterable[Tuple[str, float]]
    ) -> None:
        """Rehydrate ``(label, epsilon)`` entries from a durable
        journal, without re-journaling them.

        Recovery-only: skips the overdraft check, because a journal
        may legitimately hold *more* than the current limit — e.g.
        the operator lowered ``epsilon_limit`` between runs, or a
        crash landed between a journaled debit and its release
        (over-counting is the safe direction).  ``remaining`` simply
        clamps at zero in those cases.
        """
        for label, epsilon in entries:
            epsilon = float(epsilon)
            if not (epsilon > 0):
                raise ValidationError(
                    f"restored entries need positive epsilon, "
                    f"got {epsilon!r}"
                )
            self._entries.append(BudgetEntry(str(label), epsilon))

    def snapshot(self) -> dict:
        """A JSON-serializable view of the ledger (service telemetry).

        Returns ``epsilon`` / ``spent`` / ``remaining`` plus the full
        entry list, so a budget endpoint can show a tenant exactly
        where their ε went.  Infinite budgets serialize ``epsilon`` and
        ``remaining`` as ``None`` (JSON has no ``inf``).
        """
        unlimited = math.isinf(self.epsilon)
        return {
            "epsilon": None if unlimited else self.epsilon,
            "spent": self.spent,
            "remaining": None if unlimited else self.remaining,
            "entries": [
                {"label": entry.label, "epsilon": entry.epsilon}
                for entry in self._entries
            ],
        }

    def spend_all(self, label: str = "") -> float:
        """Consume whatever remains and return the amount."""
        amount = self.remaining
        if amount <= 0:
            raise BudgetExceededError(0.0, 0.0)
        return self.spend(amount, label)

    # ------------------------------------------------------------------
    # Structured allocation
    # ------------------------------------------------------------------
    def split(self, fractions: Tuple[float, ...] | List[float]) -> List[float]:
        """Return ε amounts proportional to ``fractions`` of the *total*.

        Validates that the fractions are positive, finite, and sum to
        at most 1 (within tolerance); violations raise the structured
        :class:`~repro.errors.InvalidFractionsError` naming the
        offending entry, so a zero fraction can never slip through to
        a degenerate (ε = 0) stage.  Does not spend anything by itself
        — callers pass the returned amounts to :meth:`spend` as each
        stage runs, which keeps the ledger aligned with actual data
        accesses.
        """
        fractions = list(fractions)
        if not fractions:
            raise InvalidFractionsError(fractions, "must be non-empty")
        for index, fraction in enumerate(fractions):
            if not (fraction > 0) or math.isinf(fraction):
                raise InvalidFractionsError(
                    fractions,
                    f"fractions[{index}] = {fraction!r} is not a "
                    f"positive finite number",
                )
        total = math.fsum(fractions)
        if total > 1 + _REL_TOL:
            raise InvalidFractionsError(
                fractions,
                f"sum {total:g} > 1; fractions must partition the budget",
            )
        return [fraction * self.epsilon for fraction in fractions]

    def assert_within_budget(self) -> None:
        """Raise :class:`BudgetExceededError` if the ledger overdrew.

        The ``spend`` path already prevents overdrafts; this is a final
        invariant check experiments call after a pipeline finishes.
        """
        if math.isinf(self.epsilon):
            return
        if self.spent > self.epsilon * (1 + _REL_TOL):
            raise BudgetExceededError(self.spent - self.epsilon, 0.0)
