"""The (two-sided) geometric mechanism — discrete analogue of Laplace.

For integer-valued queries with L1 sensitivity Δ, adding two-sided
geometric noise with parameter ``α = exp(−ε/Δ)``,

    Pr[Z = z] = (1 − α) / (1 + α) · α^{|z|},   z ∈ ℤ,

satisfies ε-DP (Ghosh, Roughgarden & Sundararajan, STOC 2009 — where
it is shown *universally utility-maximizing* for count queries).

This is an extension beyond the paper (which uses Laplace
everywhere): bin counts are integers, so discrete noise produces
integer releases — convenient when published counts must be
integral — at essentially the same variance:

    Var[Z] = 2α / (1 − α)²     (vs 2(Δ/ε)² for Laplace; the ratio
                                tends to 1 as ε/Δ → 0).

:func:`repro.core.basis_freq.noisy_bin_counts` accepts
``noise="geometric"`` to swap mechanisms; the ablation benchmark
``bench_ablation_noise.py`` measures the (small) difference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dp.rng import RngLike, ensure_rng
from repro.errors import ValidationError


def geometric_alpha(sensitivity: float, epsilon: float) -> float:
    """The mechanism parameter ``α = exp(−ε/Δ)``."""
    if not (sensitivity > 0):
        raise ValidationError(
            f"sensitivity must be positive, got {sensitivity!r}"
        )
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon!r}")
    return math.exp(-epsilon / sensitivity)


def geometric_noise(
    alpha: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | int:
    """Draw two-sided geometric noise with parameter ``alpha``.

    Sampled as the difference of two i.i.d. geometric variables: if
    ``G1, G2 ~ Geometric(1 − α)`` (counting failures before the first
    success, support {0, 1, …}), then ``G1 − G2`` has exactly the
    two-sided geometric law above.

    ``alpha = 0`` is the ε → ∞ limit (``exp(−ε/Δ)`` underflows): the
    noise is identically zero.
    """
    if not 0 <= alpha < 1:
        raise ValidationError(f"alpha must be in [0, 1), got {alpha!r}")
    if alpha == 0.0:
        if size is None:
            return 0
        return np.zeros(size, dtype=np.int64)
    generator = ensure_rng(rng)
    # numpy's geometric counts trials (support {1, 2, ...}); subtract 1
    # to count failures.
    first = generator.geometric(1.0 - alpha, size=size) - 1
    second = generator.geometric(1.0 - alpha, size=size) - 1
    noise = first - second
    if size is None:
        return int(noise)
    return noise.astype(np.int64)


def geometric_mechanism(
    values: np.ndarray | float,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> np.ndarray | int:
    """Release integer ``values`` under ε-DP via geometric noise.

    ``values`` are rounded to the nearest integer first (the mechanism
    is defined over ℤ); outputs are integers.
    """
    alpha = geometric_alpha(sensitivity, epsilon)
    array = np.rint(np.asarray(values)).astype(np.int64)
    noise = geometric_noise(alpha, size=array.shape, rng=rng)
    noisy = array + noise
    if np.isscalar(values) or array.shape == ():
        return int(noisy)
    return noisy


def geometric_variance(alpha: float) -> float:
    """Variance of the two-sided geometric law: ``2α / (1 − α)²``.

    Always at most the matching Laplace variance ``2(Δ/ε)²`` (the
    ratio rises to 1 as ε/Δ → 0 and falls to 0 as ε/Δ → ∞).
    """
    if not 0 <= alpha < 1:
        raise ValidationError(f"alpha must be in [0, 1), got {alpha!r}")
    return 2.0 * alpha / (1.0 - alpha) ** 2
