"""Seedable random-number handling shared by all mechanisms.

Every randomized component in the library accepts an optional ``rng``
argument.  :func:`ensure_rng` normalizes the accepted spellings
(``None``, an integer seed, or an existing :class:`numpy.random.Generator`)
into a :class:`numpy.random.Generator`, so experiments are reproducible
end to end from a single seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.integer, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    * ``None`` -> a fresh, OS-seeded generator.
    * ``int`` -> a generator seeded with that value (deterministic).
    * ``Generator`` -> returned unchanged (shared state).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError(
        f"rng must be None, an int seed, or numpy.random.Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Uses numpy's ``spawn`` so the children's streams are statistically
    independent of each other and of the parent.  Useful for running
    repeated trials whose randomness must not overlap.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return list(parent.spawn(count))
