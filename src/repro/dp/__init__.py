"""Differential-privacy substrate: budget accounting and mechanisms.

The two mechanisms the paper relies on (Section 2.1):

* :func:`repro.dp.laplace.laplace_mechanism` — additive Laplace noise
  calibrated to L1 sensitivity.
* :func:`repro.dp.exponential.exponential_mechanism` (and its
  without-replacement variant) — select discrete outcomes with
  probability exponential in their quality.

:class:`repro.dp.budget.PrivacyBudget` enforces sequential composition.
"""

from repro.dp.budget import BudgetEntry, PrivacyBudget
from repro.dp.geometric import (
    geometric_alpha,
    geometric_mechanism,
    geometric_noise,
    geometric_variance,
)
from repro.dp.exponential import (
    em_probabilities,
    em_scores,
    exponential_mechanism,
    exponential_mechanism_top_k,
)
from repro.dp.laplace import (
    laplace_cdf,
    laplace_mechanism,
    laplace_noise,
    laplace_ppf,
    laplace_variance,
)
from repro.dp.rng import RngLike, ensure_rng, spawn_rngs

__all__ = [
    "BudgetEntry",
    "PrivacyBudget",
    "RngLike",
    "em_probabilities",
    "em_scores",
    "ensure_rng",
    "exponential_mechanism",
    "exponential_mechanism_top_k",
    "geometric_alpha",
    "geometric_mechanism",
    "geometric_noise",
    "geometric_variance",
    "laplace_cdf",
    "laplace_mechanism",
    "laplace_noise",
    "laplace_ppf",
    "laplace_variance",
    "spawn_rngs",
]
