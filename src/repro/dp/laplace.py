"""The Laplace mechanism (paper Section 2.1).

For a function ``g`` with L1 global sensitivity ``GS_g``, releasing
``g(D) + Lap(GS_g / ε)`` satisfies ε-differential privacy.  PrivBasis
uses this once, in BasisFreq (paper Algorithm 1): publishing all bin
counts of a width-``w`` basis set has sensitivity ``w`` (one transaction
lands in exactly one bin per basis), so each bin count gets
``Lap(w / ε)`` noise.
"""

from __future__ import annotations

import numpy as np

from repro.dp.rng import RngLike, ensure_rng
from repro.errors import ValidationError


def laplace_noise(
    scale: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | float:
    """Draw Laplace(0, ``scale``) noise.

    ``scale`` is the *b* parameter of the Laplace distribution
    (density ``exp(-|x|/b) / 2b``), i.e. ``sensitivity / epsilon``.
    """
    if not (scale > 0):
        raise ValidationError(f"scale must be positive, got {scale!r}")
    generator = ensure_rng(rng)
    return generator.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    values: np.ndarray | float,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> np.ndarray | float:
    """Release ``values`` under ε-DP via additive Laplace noise.

    Parameters
    ----------
    values:
        The exact query answer(s); a scalar or an array (noise is added
        element-wise, the *whole vector* being one query of the given
        joint sensitivity).
    sensitivity:
        L1 global sensitivity of the full vector-valued query.
    epsilon:
        Privacy budget consumed by this release.
    """
    if not (sensitivity > 0):
        raise ValidationError(
            f"sensitivity must be positive, got {sensitivity!r}"
        )
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon!r}")
    scale = sensitivity / epsilon
    array = np.asarray(values, dtype=float)
    noise = laplace_noise(scale, size=array.shape, rng=rng)
    noisy = array + noise
    if np.isscalar(values) or array.shape == ():
        return float(noisy)
    return noisy


def laplace_variance(scale: float) -> float:
    """Variance of Laplace(0, ``scale``): ``2 * scale**2``.

    Used throughout the error-variance analysis (paper Equation 4).
    """
    if not (scale > 0):
        raise ValidationError(f"scale must be positive, got {scale!r}")
    return 2.0 * scale * scale


def laplace_cdf(x: np.ndarray | float, scale: float) -> np.ndarray | float:
    """CDF of Laplace(0, ``scale``) evaluated at ``x``.

    Needed by the TF baseline's exact order-statistics sampler
    (:mod:`repro.baselines.tf`).
    """
    if not (scale > 0):
        raise ValidationError(f"scale must be positive, got {scale!r}")
    x = np.asarray(x, dtype=float)
    result = np.where(
        x < 0,
        0.5 * np.exp(x / scale),
        1.0 - 0.5 * np.exp(-x / scale),
    )
    if result.shape == ():
        return float(result)
    return result


def laplace_ppf(q: np.ndarray | float, scale: float) -> np.ndarray | float:
    """Quantile function (inverse CDF) of Laplace(0, ``scale``)."""
    if not (scale > 0):
        raise ValidationError(f"scale must be positive, got {scale!r}")
    q = np.asarray(q, dtype=float)
    if np.any((q < 0) | (q > 1)):
        raise ValidationError("quantiles must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        result = np.where(
            q < 0.5,
            scale * np.log(2.0 * q),
            -scale * np.log(2.0 * (1.0 - q)),
        )
    if result.shape == ():
        return float(result)
    return result
