"""Feasibility analysis of the TF method (paper Section 3.1, Table 2(b)).

TF's truncation threshold is ``f_k − γ`` with

    γ = (4k / εN) · (ln(k/ρ) + ln|U|),         (paper Equation 3)

where ``U`` is the family of itemsets of length ≤ m, ``|U| =
Σ_{i≤m} C(|I|, i) ≈ |I|^m``.  When γ ≥ f_k the truncation prunes
nothing, the utility guarantee ("every selected itemset has true
frequency ≥ f_k − γ") is vacuous, and the algorithm degenerates —
Table 2(b) shows this happens on most datasets at practically relevant
k.  This module computes all Table 2(b) columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.datasets.registry import cached_top_k
from repro.datasets.transactions import TransactionDatabase
from repro.errors import ValidationError


def candidate_family_size(num_items: int, m: int) -> int:
    """``|U| = Σ_{i=1..m} C(|I|, i)`` — exact (arbitrary precision)."""
    if num_items < 1:
        raise ValidationError(f"num_items must be >= 1, got {num_items}")
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    return sum(math.comb(num_items, size) for size in range(1, m + 1))


def log_candidate_family_size(num_items: int, m: int) -> float:
    """``ln|U|`` computed stably for huge vocabularies."""
    size = candidate_family_size(num_items, m)
    # Python ints are exact; math.log handles arbitrary precision ints.
    return math.log(size)


def gamma_threshold(
    k: int,
    epsilon: float,
    num_transactions: int,
    num_items: int,
    m: int,
    rho: float = 0.9,
) -> float:
    """Paper Equation 3: the truncation margin γ (a frequency)."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if num_transactions < 1:
        raise ValidationError("num_transactions must be >= 1")
    if not 0 < rho < 1:
        raise ValidationError(f"rho must be in (0, 1), got {rho}")
    log_universe = log_candidate_family_size(num_items, m)
    return (
        4.0
        * k
        / (epsilon * num_transactions)
        * (math.log(k / rho) + log_universe)
    )


@dataclass(frozen=True)
class TFFeasibility:
    """One row of Table 2(b)."""

    dataset: str
    k: int
    m: int
    fk: float
    fk_count: float           # f_k · N (the paper's column)
    universe_size: int        # |U|
    gamma: float
    gamma_count: float        # γ · N (the paper's column)
    epsilon: float
    rho: float

    @property
    def truncation_frequency(self) -> float:
        """``f_k − γ``; ≤ 0 means no pruning at all."""
        return self.fk - self.gamma

    @property
    def is_degenerate(self) -> bool:
        """True when γ ≥ f_k (TF's guarantee is vacuous)."""
        return self.gamma >= self.fk


def tf_feasibility(
    database: TransactionDatabase,
    k: int,
    m: int,
    epsilon: float = 1.0,
    rho: float = 0.9,
    dataset: str = "",
) -> TFFeasibility:
    """Compute the Table 2(b) row for a dataset / k / m combination.

    The paper's table uses ε = 1 (most favourable to TF).
    """
    n = database.num_transactions
    top = cached_top_k(database, k, max_length=m)
    if len(top) >= k:
        fk = top[k - 1][1] / n
    elif top:
        fk = top[-1][1] / n
    else:
        fk = 0.0
    gamma = gamma_threshold(
        k=k,
        epsilon=epsilon,
        num_transactions=n,
        num_items=database.num_items,
        m=m,
        rho=rho,
    )
    return TFFeasibility(
        dataset=dataset,
        k=k,
        m=m,
        fk=fk,
        fk_count=fk * n,
        universe_size=candidate_family_size(database.num_items, m),
        gamma=gamma,
        gamma_count=gamma * n,
        epsilon=epsilon,
        rho=rho,
    )
