"""Baselines the paper compares against."""

from repro.baselines.dpsynth import (
    dpsynth_release,
    dpsynth_top_k,
    taxonomy_height,
)
from repro.baselines.nonprivate import exact_top_k
from repro.baselines.tf import DEFAULT_EXPLICIT_CAP, tf_method
from repro.baselines.tf_analysis import (
    TFFeasibility,
    candidate_family_size,
    gamma_threshold,
    log_candidate_family_size,
    tf_feasibility,
)

__all__ = [
    "DEFAULT_EXPLICIT_CAP",
    "TFFeasibility",
    "candidate_family_size",
    "dpsynth_release",
    "dpsynth_top_k",
    "exact_top_k",
    "gamma_threshold",
    "log_candidate_family_size",
    "taxonomy_height",
    "tf_feasibility",
    "tf_method",
]
