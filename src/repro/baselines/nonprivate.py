"""Non-private top-k reference, in the shared result shape.

Useful as the ε → ∞ anchor in experiments: both PrivBasis and TF
should converge to this as the budget grows.
"""

from __future__ import annotations

from typing import List

from repro.core.result import NoisyItemset, PrivateFIMResult
from repro.datasets.transactions import TransactionDatabase
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError


def exact_top_k(
    database: TransactionDatabase,
    k: int,
    backend: CountingBackend = None,
) -> PrivateFIMResult:
    """The exact top-k itemsets with exact frequencies (no privacy)."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    backend = resolve_backend(database, backend)
    n = float(backend.num_transactions) or 1.0
    top = backend.top_k(k)
    itemsets: List[NoisyItemset] = [
        NoisyItemset(
            itemset=itemset,
            noisy_count=float(support),
            noisy_frequency=support / n,
            count_variance=0.0,
        )
        for itemset, support in top
    ]
    return PrivateFIMResult(
        itemsets=itemsets,
        k=k,
        epsilon=float("inf"),
        method="exact",
    )
