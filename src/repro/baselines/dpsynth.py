"""DiffPart-style synthetic transaction release (Chen et al., PVLDB
4(11) 2011) — the second comparator the paper analyzes.

The paper's Related Work (Section 6): "Chen et al. studied the
releasing of transaction datasets while satisfying differential
privacy … partitions the transaction dataset in a top-down fashion
guided by a context-free taxonomy tree, and reports the noisy counts
of the transactions at the leaf level.  For the datasets we consider
in this paper, this method generates either an empty synthetic
dataset or a dataset that is highly inaccurate.  An analysis … shows
that this method can provide reasonable performance only when the
number of items is small."

This module implements the mechanism so the benchmark
``bench_dpsynth.py`` can reproduce that analysis:

1. Build a context-free (data-independent) taxonomy: items grouped
   recursively with a fixed fanout.
2. Partition transactions top-down by their *generalized
   representation* — the set of taxonomy nodes (at the current cut)
   whose subtrees the transaction intersects.  Expanding one node
   splits a partition into sub-partitions, one per non-empty subset
   of intersected children.
3. Spend ε uniformly per taxonomy level; a partition continues to
   the next level only if its noisy count clears a noise-calibrated
   threshold (pruning is what makes the mechanism DP-efficient — and
   what empties the output when the item universe is large, because
   real counts spread over exponentially many partitions while the
   per-level noise stays put).
4. At the leaf cut, emit ``noisy count`` copies of the exact itemset
   as synthetic transactions.

The output is a synthetic :class:`TransactionDatabase`; mining it
with the exact top-k oracle gives the method's private top-k, which
the bench compares against PrivBasis and TF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.dp.laplace import laplace_noise
from repro.dp.rng import RngLike, ensure_rng
from repro.errors import ValidationError
from repro.fim.counting import database_of

#: Default taxonomy fanout (Chen et al. evaluate f ∈ {2, …, 16}).
DEFAULT_FANOUT = 8

#: Threshold multiplier: partitions whose noisy count falls below
#: ``factor · √2 · (per-level noise scale)`` are pruned, as in the
#: original paper's noise-calibrated threshold.
DEFAULT_THRESHOLD_FACTOR = 2.0


@dataclass(frozen=True)
class TaxonomyNode:
    """One node of the context-free taxonomy (a contiguous id range).

    ``lo`` inclusive, ``hi`` exclusive: the node covers items
    ``lo … hi−1``.  Leaves are single items (hi = lo + 1).
    """

    lo: int
    hi: int

    @property
    def is_leaf(self) -> bool:
        return self.hi - self.lo == 1

    def children(self, fanout: int) -> List["TaxonomyNode"]:
        """Split the range into ≤ ``fanout`` near-equal child ranges."""
        size = self.hi - self.lo
        if size <= 1:
            return []
        parts = min(fanout, size)
        bounds = np.linspace(self.lo, self.hi, parts + 1).astype(int)
        return [
            TaxonomyNode(int(bounds[i]), int(bounds[i + 1]))
            for i in range(parts)
            if bounds[i] < bounds[i + 1]
        ]


def taxonomy_height(num_items: int, fanout: int) -> int:
    """Number of expansion levels from the root cut to all-leaves."""
    if num_items <= 1:
        return 1
    return max(1, int(math.ceil(math.log(num_items, fanout))))


def dpsynth_release(
    database: TransactionDatabase,
    epsilon: float,
    fanout: int = DEFAULT_FANOUT,
    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
    max_partitions: int = 200_000,
    rng: RngLike = None,
    backend=None,
) -> TransactionDatabase:
    """Release a synthetic transaction database under ε-DP.

    Accepts a :class:`repro.engine.CountingBackend` in the
    ``database`` slot (or via ``backend``) for interface symmetry with
    the other methods; the partitioning pass reads whole transactions,
    which no counting primitive expresses, so it always streams the
    unified database.

    Parameters
    ----------
    epsilon:
        Total budget, split uniformly across taxonomy levels.
    fanout:
        Taxonomy fanout; larger fanout = shallower tree = less noise
        per level but more sub-partitions per expansion.
    threshold_factor:
        Pruning aggressiveness (in units of the per-level noise
        scale's √2·b standard deviation).
    max_partitions:
        Safety valve on the partition frontier: the expansion is
        breadth-first and stops branching when the frontier exceeds
        this bound (the mechanism has long since emptied out when it
        is hit).

    Returns
    -------
    A synthetic :class:`TransactionDatabase` over the same item
    vocabulary.  May be *empty* — on large vocabularies it usually is,
    which is precisely the PrivBasis paper's point.
    """
    if not epsilon > 0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if fanout < 2:
        raise ValidationError(f"fanout must be >= 2, got {fanout}")
    if threshold_factor < 0:
        raise ValidationError(
            f"threshold_factor must be >= 0, got {threshold_factor}"
        )
    database = database_of(backend if backend is not None else database)
    generator = ensure_rng(rng)
    num_items = database.num_items
    height = taxonomy_height(num_items, fanout)
    eps_level = epsilon / (height + 1)
    scale = 1.0 / eps_level
    threshold = threshold_factor * math.sqrt(2.0) * scale

    root = TaxonomyNode(0, num_items)
    transactions = [frozenset(t) for t in database]
    non_empty = [t for t in transactions if t]

    # A partition: (cut, transaction list), where the cut is the
    # frozen set of taxonomy nodes every member intersects (and no
    # other node at this cut level).
    frontier: List[Tuple[FrozenSet[TaxonomyNode], List[FrozenSet[int]]]]
    frontier = [(frozenset([root]), non_empty)]
    synthetic_rows: List[Tuple[int, ...]] = []

    while frontier:
        cut, members = frontier.pop()
        expandable = next(
            (node for node in sorted(
                cut, key=lambda n: (n.lo - n.hi, n.lo)
            ) if not node.is_leaf),
            None,
        )
        noisy_count = len(members) + float(
            laplace_noise(scale, rng=generator)
        )
        if noisy_count < threshold:
            continue  # pruned
        if expandable is None:
            # Leaf cut: every node is a single item — emit the exact
            # itemset noisy_count times.
            copies = max(0, int(round(noisy_count)))
            itemset = tuple(sorted(node.lo for node in cut))
            synthetic_rows.extend([itemset] * copies)
            continue
        children = expandable.children(fanout)
        rest = cut - {expandable}
        buckets: Dict[FrozenSet[TaxonomyNode], List[FrozenSet[int]]] = {}
        for transaction in members:
            hit = frozenset(
                child
                for child in children
                if any(
                    child.lo <= item < child.hi for item in transaction
                )
            )
            key = rest | hit
            buckets.setdefault(key, []).append(transaction)
        if len(frontier) + len(buckets) > max_partitions:
            continue  # safety valve; see the docstring
        frontier.extend(buckets.items())

    return TransactionDatabase(synthetic_rows, num_items=num_items)


def dpsynth_top_k(
    database: TransactionDatabase,
    k: int,
    epsilon: float,
    fanout: int = DEFAULT_FANOUT,
    rng: RngLike = None,
    backend=None,
):
    """Mine the top-k itemsets from a DiffPart synthetic release.

    Returns ``(itemset, frequency)`` pairs (frequency relative to the
    *original* N, as the methods under comparison publish), possibly
    fewer than k — or none at all when the synthetic data is empty.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    database = database_of(backend if backend is not None else database)
    synthetic = dpsynth_release(
        database, epsilon, fanout=fanout, rng=rng
    )
    if synthetic.num_transactions == 0:
        return []
    from repro.fim.topk import top_k_itemsets

    n = database.num_transactions
    return [
        (itemset, count / n)
        for itemset, count in top_k_itemsets(synthetic, k)
    ]
