"""The TF (truncated frequency) baseline — Bhaskar et al., KDD 2010.

Releases the top-k itemsets among all itemsets of length ≤ m (the
candidate family ``U``, |U| ≈ |I|^m) in two ε/2 phases:

1. **Selection.**  Each candidate's *truncated frequency* is
   ``f̂(X) = max(f(X), f_k − γ)`` with γ from the paper's Equation 3.
   Either (a) add ``Lap(4k/(εN))`` to every truncated frequency and
   take the k largest — the *Laplace* variant — or (b) sample k
   candidates without replacement with probability ∝
   ``exp(εN·f̂(X)/4k)`` — the *EM* variant.
2. **Measurement.**  Publish each selected itemset's true frequency
   plus ``Lap(2k/(εN))`` noise.

Truncation makes the mechanism runnable without enumerating ``U``:
candidates below the threshold share one score, so they form an
*implicit pool* handled in aggregate.

Implementation notes
--------------------
* The implicit pool's noisy scores are sampled **exactly** via
  sequential order statistics: the maximum of M i.i.d. Laplace draws is
  ``F⁻¹(u^{1/M})``; conditioning below it and recursing yields the
  descending order statistics one by one (at most k are ever needed).
  Within the pool all candidates are exchangeable, so a sampled winner
  is materialized as a uniformly random not-yet-chosen member.
* When ``f_k − γ ≤ 0`` — the degenerate regime paper Section 3.1
  analyzes — truncation prunes nothing and the explicit set would be
  all of ``U``.  We then mine explicitly down to the largest support
  floor that keeps the explicit set at or below ``explicit_cap``
  candidates and treat everything below it as implicit (at its
  truncated score).  This underweights candidates in the gap by at
  most ``floor/N`` of score, only *helps* TF if anything, and is
  exactly the regime where TF's utility guarantee is already vacuous
  (Table 2(b)).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.tf_analysis import (
    candidate_family_size,
    gamma_threshold,
    log_candidate_family_size,
)
from repro.core.result import NoisyItemset, PrivateFIMResult
from repro.datasets.transactions import TransactionDatabase
from repro.dp.laplace import laplace_noise
from repro.dp.rng import RngLike, ensure_rng
from repro.engine.backend import CountingBackend, resolve_backend
from repro.errors import ValidationError
from repro.fim.fpgrowth import fpgrowth
from repro.fim.itemsets import Itemset

#: Default bound on the explicitly mined candidate set (see module
#: docstring; only binds in TF's degenerate no-pruning regime).
DEFAULT_EXPLICIT_CAP = 300_000


def tf_method(
    database: TransactionDatabase,
    k: int,
    epsilon: float,
    m: int,
    rho: float = 0.9,
    variant: str = "laplace",
    explicit_cap: int = DEFAULT_EXPLICIT_CAP,
    rng: RngLike = None,
    backend: CountingBackend = None,
) -> PrivateFIMResult:
    """Run the TF method; ε-DP in total (ε/2 per phase).

    Parameters
    ----------
    m:
        Maximum candidate itemset length (the method's key parameter;
        the paper reports, per experiment, the m giving best
        precision).
    rho:
        Error-probability parameter of γ (paper uses ρ = 0.9).
    variant:
        ``"laplace"`` (noisy truncated frequencies) or ``"em"``
        (repeated exponential mechanism).
    backend:
        Counting engine for all data access (``f_k``, explicit
        mining, phase-2 measurement); defaults to a
        :class:`~repro.engine.bitmap.BitmapBackend`.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    if not (epsilon > 0):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if not 0 < rho < 1:
        raise ValidationError(f"rho must be in (0, 1), got {rho}")
    if variant not in ("laplace", "em"):
        raise ValidationError(
            f"variant must be 'laplace' or 'em', got {variant!r}"
        )
    backend = resolve_backend(database, backend)
    database = backend.database
    generator = ensure_rng(rng)
    n = backend.num_transactions
    if n == 0:
        raise ValidationError("database is empty")

    universe_size = candidate_family_size(backend.num_items, m)
    gamma = gamma_threshold(
        k=k,
        epsilon=epsilon,
        num_transactions=n,
        num_items=backend.num_items,
        m=m,
        rho=rho,
    )
    fk = _kth_candidate_frequency(backend, k, m)
    truncation = fk - gamma

    explicit = _mine_explicit(backend, m, truncation, explicit_cap)
    implicit_value = max(truncation, 0.0)
    implicit_count = universe_size - len(explicit)
    if implicit_count < 0:
        raise AssertionError(
            "explicit set larger than the candidate family"
        )

    if variant == "laplace":
        selected = _select_laplace(
            explicit, implicit_count, implicit_value, k, epsilon, n,
            generator,
        )
    else:
        selected = _select_em(
            explicit, implicit_count, implicit_value, k, epsilon, n,
            generator,
        )
    selected = _materialize_implicit(
        selected, explicit, database, m, generator
    )

    # Phase 2 (ε/2): noisy frequencies of the selected itemsets.  All
    # exact supports ship as one batched backend call; noise is then
    # drawn per itemset in selection order — the same RNG consumption
    # order as the historical per-itemset loop, so seeded runs are
    # bit-identical.
    scale = 2.0 * k / (epsilon * n)
    exact_supports = backend.conjunction_supports(selected)
    itemsets: List[NoisyItemset] = []
    for itemset, support in zip(selected, exact_supports):
        true_frequency = support / n
        noisy_frequency = float(
            true_frequency + laplace_noise(scale, rng=generator)
        )
        itemsets.append(
            NoisyItemset(
                itemset=itemset,
                noisy_count=noisy_frequency * n,
                noisy_frequency=noisy_frequency,
                count_variance=2.0 * (scale * n) ** 2,
            )
        )
    itemsets.sort(key=lambda entry: (-entry.noisy_frequency, entry.itemset))
    return PrivateFIMResult(
        itemsets=itemsets, k=k, epsilon=epsilon, method=f"tf-{variant}"
    )


# ----------------------------------------------------------------------
# Explicit candidate mining
# ----------------------------------------------------------------------
def _kth_candidate_frequency(
    backend: CountingBackend, k: int, m: int
) -> float:
    """``f_k`` — frequency of the k-th most frequent member of U."""
    top = backend.top_k(k, max_length=m)
    if not top:
        return 0.0
    if len(top) < k:
        return top[-1][1] / backend.num_transactions
    return top[k - 1][1] / backend.num_transactions


#: Memo for explicit mining: repeated trials at the same (dataset,
#: floor, m) re-mine identical explicit sets.  Each entry pins the
#: database it was mined from, both to validate the ``id()`` key (ids
#: can be reused after garbage collection) and because databases are
#: immutable so the mined dict stays valid as long as the entry lives.
_EXPLICIT_MINING_CACHE: Dict[
    Tuple[int, int, int],
    Tuple[TransactionDatabase, Dict[Itemset, int]],
] = {}

#: Entry bound; beyond it the memo is dropped wholesale (sweeps touch
#: only a handful of (dataset, floor, m) combinations, so eviction
#: policy does not matter).
_EXPLICIT_MINING_CACHE_LIMIT = 64


def clear_explicit_mining_cache() -> None:
    """Drop the TF explicit-mining memo (frees pinned databases)."""
    _EXPLICIT_MINING_CACHE.clear()


def _mine_explicit(
    backend: CountingBackend,
    m: int,
    truncation: float,
    explicit_cap: int,
) -> Dict[Itemset, int]:
    """All candidates with frequency above the truncation threshold.

    Support floor = ``ceil(truncation·N)``, raised (degenerate regime)
    until the *a-priori bound* ``Σ_{i≤m} C(|items ≥ floor|, i)`` on the
    mined set fits ``explicit_cap``.
    """
    backend = resolve_backend(backend)
    database = backend.database
    n = backend.num_transactions
    floor = max(1, int(math.ceil(truncation * n - 1e-9)))
    supports = backend.item_supports()
    floor = _raise_floor_to_cap(supports, floor, m, explicit_cap)
    key = (id(database), floor, m)
    entry = _EXPLICIT_MINING_CACHE.get(key)
    if entry is not None and entry[0] is database:
        return entry[1]
    mined = fpgrowth(database, min_support=floor, max_length=m,
                     backend=backend)
    if len(_EXPLICIT_MINING_CACHE) >= _EXPLICIT_MINING_CACHE_LIMIT:
        _EXPLICIT_MINING_CACHE.clear()
    _EXPLICIT_MINING_CACHE[key] = (database, mined)
    return mined


def _raise_floor_to_cap(
    item_supports: np.ndarray, floor: int, m: int, cap: int
) -> int:
    """Smallest support floor ≥ ``floor`` whose candidate bound ≤ cap."""
    distinct = np.unique(item_supports[item_supports >= floor])
    if distinct.size == 0:
        return floor
    candidates = [floor] + [int(value) for value in distinct]
    for value in candidates:
        eligible = int(np.count_nonzero(item_supports >= value))
        bound = sum(math.comb(eligible, size) for size in range(1, m + 1))
        if bound <= cap:
            return value
    return int(distinct[-1]) + 1


# ----------------------------------------------------------------------
# Selection phase
# ----------------------------------------------------------------------
def _select_laplace(
    explicit: Dict[Itemset, int],
    implicit_count: int,
    implicit_value: float,
    k: int,
    epsilon: float,
    n: int,
    generator: np.random.Generator,
) -> List[Optional[Itemset]]:
    """Laplace variant: top-k of noisy truncated frequencies.

    Explicit candidates get individual noise; the implicit pool's top
    order statistics stream in descending order and merge lazily.
    ``None`` entries denote implicit winners (materialized later).
    """
    scale = 4.0 * k / (epsilon * n)
    names = list(explicit.keys())
    frequencies = np.array(
        [explicit[name] for name in names], dtype=float
    ) / n
    truncated = np.maximum(frequencies, implicit_value)
    noisy = truncated + laplace_noise(
        scale, size=truncated.shape, rng=generator
    )
    order = np.argsort(-noisy, kind="stable")

    implicit_stream = _laplace_order_statistics(
        implicit_count, implicit_value, scale, k, generator
    )
    selected: List[Optional[Itemset]] = []
    explicit_position = 0
    implicit_position = 0
    while len(selected) < k:
        explicit_score = (
            noisy[order[explicit_position]]
            if explicit_position < len(order)
            else -math.inf
        )
        implicit_score = (
            implicit_stream[implicit_position]
            if implicit_position < len(implicit_stream)
            else -math.inf
        )
        if explicit_score == -math.inf and implicit_score == -math.inf:
            break
        if explicit_score >= implicit_score:
            selected.append(names[order[explicit_position]])
            explicit_position += 1
        else:
            selected.append(None)
            implicit_position += 1
    return selected


def _laplace_order_statistics(
    count: int,
    location: float,
    scale: float,
    how_many: int,
    generator: np.random.Generator,
) -> List[float]:
    """Top ``how_many`` order statistics of ``count`` i.i.d. Laplace.

    Exact sequential sampling without materializing the pool: the
    maximum of M draws is ``F⁻¹(U^{1/M})``; each subsequent statistic
    conditions below its predecessor.  All computation in log-CDF space
    for stability at M ~ 10⁹.
    """
    values: List[float] = []
    log_cdf_bound = 0.0  # log F(previous statistic); starts at log 1
    remaining = count
    while remaining > 0 and len(values) < how_many:
        uniform = generator.random()
        # log F(next) = log F(bound) + log(u)/remaining
        log_cdf = log_cdf_bound + math.log(uniform) / remaining
        values.append(location + scale * _standard_laplace_ppf_log(log_cdf))
        log_cdf_bound = log_cdf
        remaining -= 1
    return values


def _standard_laplace_ppf_log(log_q: float) -> float:
    """Quantile of Laplace(0, 1) given the *log* of the quantile level."""
    log_half = -math.log(2.0)
    if log_q <= log_half:
        # q <= 1/2:  q = e^z / 2  =>  z = log(2q)
        return log_q + math.log(2.0)
    # q > 1/2:  1 - q = e^{-z} / 2  =>  z = -log(2(1-q))
    one_minus_q = -math.expm1(log_q)
    if one_minus_q <= 0.0:
        # log_q == 0 up to rounding: the quantile is unbounded; return
        # a very large value consistent with "the maximum of a huge
        # pool": practically unreachable.
        return math.inf
    return -math.log(2.0 * one_minus_q)


def _select_em(
    explicit: Dict[Itemset, int],
    implicit_count: int,
    implicit_value: float,
    k: int,
    epsilon: float,
    n: int,
    generator: np.random.Generator,
) -> List[Optional[Itemset]]:
    """EM variant: k draws without replacement, p ∝ exp(εN·f̂/4k).

    The implicit pool participates as one aggregate outcome with log
    weight ``log M + εN·f̂_pool/4k``; drawing it consumes one pool
    member.  Sampling uses the Gumbel-max trick over the explicit
    scores plus the aggregate, in log space.
    """
    exponent_scale = epsilon * n / (4.0 * k)
    names = list(explicit.keys())
    frequencies = np.array(
        [explicit[name] for name in names], dtype=float
    ) / n
    truncated = np.maximum(frequencies, implicit_value)
    log_weights = truncated * exponent_scale
    alive = np.ones(len(names), dtype=bool)
    pool_remaining = implicit_count
    pool_log_weight_unit = implicit_value * exponent_scale

    selected: List[Optional[Itemset]] = []
    for _ in range(k):
        candidate_scores = np.where(
            alive,
            log_weights + generator.gumbel(size=log_weights.shape),
            -np.inf,
        )
        best_explicit = (
            int(np.argmax(candidate_scores)) if len(names) else -1
        )
        best_explicit_score = (
            candidate_scores[best_explicit] if len(names) else -math.inf
        )
        pool_score = -math.inf
        if pool_remaining > 0:
            pool_score = (
                math.log(pool_remaining)
                + pool_log_weight_unit
                + generator.gumbel()
            )
        if best_explicit_score == -math.inf and pool_score == -math.inf:
            break
        if best_explicit_score >= pool_score:
            selected.append(names[best_explicit])
            alive[best_explicit] = False
        else:
            selected.append(None)
            pool_remaining -= 1
    return selected


# ----------------------------------------------------------------------
# Implicit winner materialization
# ----------------------------------------------------------------------
def _materialize_implicit(
    selected: Sequence[Optional[Itemset]],
    explicit: Dict[Itemset, int],
    database: TransactionDatabase,
    m: int,
    generator: np.random.Generator,
) -> List[Itemset]:
    """Replace ``None`` winners by uniform draws from the implicit pool.

    All implicit candidates share one truncated score, so conditioned
    on "an implicit candidate won", the winner is uniform over the
    pool.  Rejection-sample a uniform member of U (size s with
    probability ∝ C(|I|, s), then s distinct uniform items) until it
    avoids the explicit set and previous picks — collision probability
    is |E|/|U|, negligible in every regime TF runs in.
    """
    taken: Set[Itemset] = set(explicit.keys())
    log_sizes = np.array(
        [
            _log_comb(database.num_items, size)
            for size in range(1, m + 1)
        ]
    )
    size_probabilities = np.exp(log_sizes - log_sizes.max())
    size_probabilities /= size_probabilities.sum()

    result: List[Itemset] = []
    for winner in selected:
        if winner is not None:
            result.append(winner)
            taken.add(winner)
            continue
        for _ in range(10_000):
            size = 1 + int(
                generator.choice(len(size_probabilities),
                                 p=size_probabilities)
            )
            itemset = tuple(
                sorted(
                    int(item)
                    for item in generator.choice(
                        database.num_items, size=size, replace=False
                    )
                )
            )
            if itemset not in taken:
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError(
                "failed to sample an implicit candidate; the candidate "
                "family is almost exhausted"
            )
        taken.add(itemset)
        result.append(itemset)
    return result


def _log_comb(n: int, k: int) -> float:
    if k > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
