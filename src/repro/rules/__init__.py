"""Association rules from (privately) released itemset frequencies.

The paper motivates frequent itemset mining with "mining association
rules" (Section 1).  Because differential privacy is closed under
post-processing, rules derived from a private release are free: no
additional budget is spent.
"""

from repro.rules.association import (
    AssociationRule,
    rules_from_release,
    rules_from_frequencies,
)

__all__ = [
    "AssociationRule",
    "rules_from_frequencies",
    "rules_from_release",
]
