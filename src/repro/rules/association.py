"""Association-rule generation (Agrawal & Srikant style) over noisy
frequency estimates.

A rule ``X → Y`` (X, Y disjoint, non-empty) derived from the itemset
``Z = X ∪ Y`` has

* support    = f(Z)                (how often the rule fires),
* confidence = f(Z) / f(X)         (how often Y follows given X),
* lift       = f(Z) / (f(X)·f(Y))  (association strength vs independence).

Here all frequencies come from a *released* family of estimates — in
the private setting, the output of PrivBasis — so generation is pure
post-processing and consumes no privacy budget.  A rule is emitted
only when all three frequencies (Z, X, Y) are present in the family:
estimating a missing marginal would silently degrade rule quality.

Noise caveat (documented rather than hidden): confidences are ratios
of noisy quantities and can exceed 1 or be negative when the noise is
large relative to the counts; values are clamped to ``[0, 1]`` and the
raw ratio kept in :attr:`AssociationRule.raw_confidence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ValidationError
from repro.fim.itemsets import Itemset, canonical_itemset

#: Frequencies below this are treated as zero when used as a divisor.
_MIN_DIVISOR = 1e-12


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent → consequent``."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: Optional[float]
    raw_confidence: float

    def __str__(self) -> str:
        lhs = "{" + ", ".join(map(str, self.antecedent)) + "}"
        rhs = "{" + ", ".join(map(str, self.consequent)) + "}"
        lift = f"{self.lift:.2f}" if self.lift is not None else "n/a"
        return (
            f"{lhs} -> {rhs}  "
            f"(supp {self.support:.4f}, conf {self.confidence:.2f}, "
            f"lift {lift})"
        )

    @property
    def itemset(self) -> Itemset:
        """The underlying itemset ``antecedent ∪ consequent``."""
        return canonical_itemset(self.antecedent + self.consequent)


def rules_from_frequencies(
    frequencies: Dict[Itemset, float],
    min_support: float = 0.0,
    min_confidence: float = 0.5,
    max_consequent_size: Optional[int] = None,
) -> List[AssociationRule]:
    """Generate all rules derivable from a frequency family.

    Parameters
    ----------
    frequencies:
        Mapping itemset → (possibly noisy) frequency in ``[0, 1]``-ish
        (noise may push values slightly outside; they are used as-is
        for support and clamped only in confidence).
    min_support:
        Rules with ``support < min_support`` are dropped.
    min_confidence:
        Rules with (clamped) ``confidence < min_confidence`` are
        dropped.
    max_consequent_size:
        If given, only rules with ``|Y| ≤ max_consequent_size`` are
        generated (1 is the classic single-consequent setting).

    Returns
    -------
    Rules sorted by (confidence, support) descending, ties broken by
    the rule's itemsets for determinism.
    """
    if not 0 <= min_confidence <= 1:
        raise ValidationError(
            f"min_confidence must be in [0, 1], got {min_confidence}"
        )
    family = {
        canonical_itemset(itemset): float(frequency)
        for itemset, frequency in frequencies.items()
    }
    rules: List[AssociationRule] = []
    for itemset, support in family.items():
        if len(itemset) < 2 or support < min_support:
            continue
        for antecedent, consequent in _splits(
            itemset, max_consequent_size
        ):
            antecedent_frequency = family.get(antecedent)
            consequent_frequency = family.get(consequent)
            if antecedent_frequency is None or consequent_frequency is None:
                continue
            if antecedent_frequency <= _MIN_DIVISOR:
                continue
            raw_confidence = support / antecedent_frequency
            confidence = min(1.0, max(0.0, raw_confidence))
            if confidence < min_confidence:
                continue
            if consequent_frequency > _MIN_DIVISOR:
                lift = raw_confidence / consequent_frequency
            else:
                lift = None
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=support,
                    confidence=confidence,
                    lift=lift,
                    raw_confidence=raw_confidence,
                )
            )
    rules.sort(
        key=lambda rule: (
            -rule.confidence,
            -rule.support,
            rule.antecedent,
            rule.consequent,
        )
    )
    return rules


def rules_from_release(
    release,
    min_support: float = 0.0,
    min_confidence: float = 0.5,
    max_consequent_size: Optional[int] = None,
) -> List[AssociationRule]:
    """Generate rules from a private release (post-processing, ε-free).

    ``release`` is any :class:`~repro.core.result.PrivateFIMResult`
    (PrivBasis or TF output); its noisy frequencies feed
    :func:`rules_from_frequencies` unchanged.
    """
    return rules_from_frequencies(
        release.frequencies(),
        min_support=min_support,
        min_confidence=min_confidence,
        max_consequent_size=max_consequent_size,
    )


def _splits(
    itemset: Itemset,
    max_consequent_size: Optional[int],
) -> Iterable[Tuple[Itemset, Itemset]]:
    """All (antecedent, consequent) partitions of ``itemset``."""
    size = len(itemset)
    largest_consequent = (
        size - 1
        if max_consequent_size is None
        else min(max_consequent_size, size - 1)
    )
    for consequent_size in range(1, largest_consequent + 1):
        for consequent in combinations(itemset, consequent_size):
            antecedent = tuple(
                item for item in itemset if item not in consequent
            )
            yield antecedent, canonical_itemset(consequent)
