"""Bron–Kerbosch maximal-clique enumeration (Algorithm 457, 1973).

The paper's basis construction (Algorithm 2, line 2) takes all maximal
cliques of the frequent-pairs graph.  We implement the pivoting variant
(Tomita et al.) with an outer loop in degeneracy order, which is the
standard output-sensitive formulation: worst case O(3^{n/3}) but linear
in practice on the sparse, small graphs PrivBasis produces (|F| ≤ a few
hundred nodes).

``networkx`` is used only as a test oracle, never here.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set, Tuple

from repro.graph.adjacency import UndirectedGraph


def maximal_cliques(graph: UndirectedGraph) -> List[Tuple[int, ...]]:
    """All inclusion-maximal cliques, each a sorted tuple, sorted.

    Isolated nodes are returned as singleton cliques (they are maximal
    cliques of size 1); callers that only want cliques of size ≥ 2
    filter afterwards, as paper Algorithm 2 does.
    """
    cliques = sorted(
        tuple(sorted(clique)) for clique in _bron_kerbosch_degeneracy(graph)
    )
    return cliques


def maximal_cliques_of_size_at_least(
    graph: UndirectedGraph, minimum_size: int
) -> List[Tuple[int, ...]]:
    """Maximal cliques with at least ``minimum_size`` nodes."""
    return [
        clique
        for clique in maximal_cliques(graph)
        if len(clique) >= minimum_size
    ]


def _bron_kerbosch_degeneracy(
    graph: UndirectedGraph,
) -> Iterator[Set[int]]:
    """Outer loop in degeneracy order, inner recursion with pivoting."""
    order = _degeneracy_order(graph)
    position = {node: index for index, node in enumerate(order)}
    for node in order:
        neighbors = graph.neighbors(node)
        candidates = {
            neighbor
            for neighbor in neighbors
            if position[neighbor] > position[node]
        }
        excluded = {
            neighbor
            for neighbor in neighbors
            if position[neighbor] < position[node]
        }
        yield from _bron_kerbosch_pivot(
            graph, {node}, candidates, excluded
        )


def _bron_kerbosch_pivot(
    graph: UndirectedGraph,
    clique: Set[int],
    candidates: Set[int],
    excluded: Set[int],
) -> Iterator[Set[int]]:
    if not candidates and not excluded:
        yield set(clique)
        return
    pivot = _choose_pivot(graph, candidates, excluded)
    pivot_neighbors = graph.neighbors(pivot)
    for node in sorted(candidates - pivot_neighbors):
        neighbors = graph.neighbors(node)
        yield from _bron_kerbosch_pivot(
            graph,
            clique | {node},
            candidates & neighbors,
            excluded & neighbors,
        )
        candidates.remove(node)
        excluded.add(node)


def _choose_pivot(
    graph: UndirectedGraph, candidates: Set[int], excluded: Set[int]
) -> int:
    """Pivot = the node of P ∪ X with most neighbors in P.

    Maximizing |P ∩ N(pivot)| minimizes the branching factor (Tomita's
    rule).  Ties break on node id for determinism.
    """
    best_node = -1
    best_score = -1
    for node in sorted(candidates | excluded):
        score = len(candidates & graph.neighbors(node))
        if score > best_score:
            best_node, best_score = node, score
    return best_node


def _degeneracy_order(graph: UndirectedGraph) -> List[int]:
    """Nodes in degeneracy (smallest-remaining-degree-first) order.

    Bucket implementation, O(V + E); deterministic via sorted buckets.
    """
    degrees = {node: graph.degree(node) for node in graph.nodes}
    buckets: List[Set[int]] = [set() for _ in range(len(degrees) + 1)]
    for node, degree in degrees.items():
        buckets[degree].add(node)
    removed: Set[int] = set()
    order: List[int] = []
    remaining = len(degrees)
    cursor = 0
    while remaining:
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        if cursor >= len(buckets):
            break
        node = min(buckets[cursor])
        buckets[cursor].remove(node)
        order.append(node)
        removed.add(node)
        remaining -= 1
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            old_degree = degrees[neighbor]
            buckets[old_degree].discard(neighbor)
            degrees[neighbor] = old_degree - 1
            buckets[old_degree - 1].add(neighbor)
        cursor = max(0, cursor - 1)
    return order


def is_clique(graph: UndirectedGraph, nodes: FrozenSet[int] | Set[int]) -> bool:
    """True iff ``nodes`` induces a complete subgraph."""
    nodes = list(nodes)
    return all(
        graph.has_edge(nodes[i], nodes[j])
        for i in range(len(nodes))
        for j in range(i + 1, len(nodes))
    )


def is_maximal_clique(
    graph: UndirectedGraph, nodes: FrozenSet[int] | Set[int]
) -> bool:
    """True iff ``nodes`` is a clique no node can extend."""
    node_set = set(nodes)
    if not is_clique(graph, node_set):
        return False
    for candidate in graph.nodes:
        if candidate in node_set:
            continue
        if node_set <= graph.neighbors(candidate):
            return False
    return True
