"""Minimal undirected graph used for the frequent-pairs graph.

PrivBasis builds a graph whose nodes are the frequent items ``F`` and
whose edges are the frequent pairs ``P`` (paper Definition 4); its
maximal cliques over-approximate the maximal frequent itemsets
(Proposition 5).  Only the operations Bron–Kerbosch and the basis
constructor need are provided.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import ValidationError


class UndirectedGraph:
    """A simple undirected graph over hashable integer nodes."""

    def __init__(
        self,
        nodes: Iterable[int] = (),
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self._adjacency: Dict[int, Set[int]] = {}
        for node in nodes:
            self.add_node(node)
        for left, right in edges:
            self.add_edge(left, right)

    def add_node(self, node: int) -> None:
        """Add an isolated node (no-op if present)."""
        self._adjacency.setdefault(int(node), set())

    def add_edge(self, left: int, right: int) -> None:
        """Add an undirected edge; self-loops are rejected."""
        left, right = int(left), int(right)
        if left == right:
            raise ValidationError(f"self-loop on node {left} not allowed")
        self._adjacency.setdefault(left, set()).add(right)
        self._adjacency.setdefault(right, set()).add(left)

    @property
    def nodes(self) -> List[int]:
        """All nodes, sorted."""
        return sorted(self._adjacency)

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """All edges as sorted (small, large) pairs, sorted."""
        seen = set()
        for node, neighbors in self._adjacency.items():
            for neighbor in neighbors:
                edge = (node, neighbor) if node < neighbor else (neighbor, node)
                seen.add(edge)
        return sorted(seen)

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Neighbor set of ``node`` (empty frozenset if absent)."""
        return frozenset(self._adjacency.get(int(node), frozenset()))

    def degree(self, node: int) -> int:
        return len(self._adjacency.get(int(node), ()))

    def has_edge(self, left: int, right: int) -> bool:
        return int(right) in self._adjacency.get(int(left), ())

    def __contains__(self, node: int) -> bool:
        return int(node) in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._adjacency))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[int, int]], nodes: Iterable[int] = ()
    ) -> "UndirectedGraph":
        """Build the frequent-pairs graph from pair itemsets.

        ``nodes`` adds isolated nodes (frequent items that appear in no
        frequent pair).
        """
        return cls(nodes=nodes, edges=pairs)
