"""Graph substrate: the frequent-pairs graph and maximal cliques."""

from repro.graph.adjacency import UndirectedGraph
from repro.graph.bron_kerbosch import (
    is_clique,
    is_maximal_clique,
    maximal_cliques,
    maximal_cliques_of_size_at_least,
)

__all__ = [
    "UndirectedGraph",
    "is_clique",
    "is_maximal_clique",
    "maximal_cliques",
    "maximal_cliques_of_size_at_least",
]
