"""Micro-benchmarks of the substrates PrivBasis is built on.

Unlike the table/figure benches (one pedantic round each), these are
true pytest-benchmark timings with repeated rounds: the counting
kernel, the subset-sum reconstruction transform, the exact miners, the
clique enumerator, and the two end-to-end private methods.

The paper's complexity claims anchored here:

* BasisFreq is O(w·|D| + w·3^ℓ) — the dataset scan dominates for
  real datasets (ℓ ≤ 12);
* the zeta transform makes reconstruction 2^ℓ·ℓ, not 3^ℓ, in practice;
* exact mining (ground truth) is far more expensive than one private
  release, which is why the registry caches it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basis import BasisSet
from repro.core.basis_freq import basis_freq
from repro.core.privbasis import privbasis
from repro.baselines.tf import clear_explicit_mining_cache, tf_method
from repro.datasets.registry import load_dataset
from repro.fim.apriori import apriori
from repro.fim.counting import (
    ItemBitmaps,
    bin_counts_for_items,
    superset_sum_transform,
)
from repro.fim.fpgrowth import fpgrowth
from repro.graph.adjacency import UndirectedGraph
from repro.graph.bron_kerbosch import maximal_cliques


@pytest.fixture(scope="module")
def mushroom():
    return load_dataset("mushroom")


@pytest.fixture(scope="module")
def retail():
    return load_dataset("retail")


@pytest.mark.benchmark(group="counting")
def bench_bin_counts_8_items(benchmark, mushroom):
    items = tuple(range(8))
    result = benchmark(bin_counts_for_items, mushroom, items)
    assert int(result.sum()) == mushroom.num_transactions


@pytest.mark.benchmark(group="counting")
def bench_bitmap_construction(benchmark, mushroom):
    items = tuple(range(mushroom.num_items))
    result = benchmark(ItemBitmaps, mushroom, items)
    assert result.num_transactions == mushroom.num_transactions


@pytest.mark.benchmark(group="counting")
def bench_superset_sum_transform_4096_bins(benchmark):
    rng = np.random.default_rng(5)
    bins = rng.poisson(10, size=4096).astype(float)
    result = benchmark(superset_sum_transform, bins)
    assert result[0] == pytest.approx(bins.sum())


@pytest.mark.benchmark(group="mining")
def bench_fpgrowth_mushroom(benchmark, mushroom):
    floor = int(0.4 * mushroom.num_transactions)
    result = benchmark(fpgrowth, mushroom, floor)
    assert len(result) > 50


@pytest.mark.benchmark(group="mining")
def bench_apriori_mushroom(benchmark, mushroom):
    floor = int(0.4 * mushroom.num_transactions)
    result = benchmark(apriori, mushroom, floor)
    assert len(result) > 50


@pytest.mark.benchmark(group="cliques")
def bench_bron_kerbosch_gnp(benchmark):
    rng = np.random.default_rng(11)
    nodes = list(range(60))
    pairs = [
        (i, j)
        for i in nodes
        for j in nodes[i + 1:]
        if rng.random() < 0.25
    ]
    graph = UndirectedGraph.from_pairs(pairs, nodes=nodes)
    cliques = benchmark(maximal_cliques, graph)
    assert cliques


@pytest.mark.benchmark(group="end-to-end")
def bench_basis_freq_single_basis(benchmark, mushroom):
    basis_set = BasisSet([tuple(range(11))])
    release = benchmark(
        basis_freq, mushroom, basis_set, 50, 1.0, rng=3
    )
    assert len(release.itemsets) == 50


@pytest.mark.benchmark(group="end-to-end")
def bench_privbasis_mushroom(benchmark, mushroom):
    release = benchmark(
        privbasis, mushroom, k=50, epsilon=1.0, rng=3
    )
    assert len(release.itemsets) == 50


@pytest.mark.benchmark(group="end-to-end")
def bench_privbasis_retail_multibasis(benchmark, retail):
    release = benchmark(
        privbasis, retail, k=100, epsilon=1.0, rng=3
    )
    assert len(release.itemsets) == 100


@pytest.mark.benchmark(group="end-to-end")
def bench_tf_mushroom(benchmark, mushroom):
    def run():
        clear_explicit_mining_cache()
        return tf_method(mushroom, k=50, epsilon=1.0, m=2, rng=3)

    release = benchmark(run)
    assert len(release.itemsets) == 50
