"""Pipeline benchmark: staging overhead and planner utility.

Two questions about the staged release pipeline:

* **Overhead** — what does the stage/plan/trace machinery cost over a
  hand-inlined monolith?  A local replica of the pre-refactor
  ``privbasis()`` body (direct calls into :mod:`repro.core`, no plan,
  no trace) runs head-to-head against
  :func:`repro.pipeline.planned_release` on one warm backend with
  identical seeds; outputs must be bit-identical, so the wall-time
  delta is pure orchestration cost (typically low single-digit
  percent, dominated by the mechanisms themselves).
* **Planner utility** — does :class:`AdaptivePlanner`'s λ-driven
  reallocation buy accuracy over the paper split on the synthetic
  registry datasets?  FNR/RE per planner, mushroom (single-basis
  regime) and pumsb_star (pairs regime).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke   # CI

``--smoke`` shrinks repeats/trials so CI exercises the full path
(monolith equivalence included) on every push without benchmark-scale
work.
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.core.basis import DEFAULT_MAX_BASIS_LENGTH, single_basis
from repro.core.basis_freq import basis_freq
from repro.core.construct_basis import construct_basis_set
from repro.core.freq_elements import get_frequent_items, get_frequent_pairs
from repro.core.lambda_select import get_lambda
from repro.datasets.registry import load_dataset
from repro.dp.budget import PrivacyBudget
from repro.dp.rng import ensure_rng
from repro.engine.bitmap import BitmapBackend
from repro.experiments.runner import pb_spec, run_trials
from repro.pipeline import (
    DEFAULT_ALPHAS,
    SINGLE_BASIS_LAMBDA,
    AdaptivePlanner,
    PaperPlanner,
    pair_budget_size,
    planned_release,
)

K = 50
EPSILON = 1.0
REPEATS = 30
UTILITY_TRIALS = 5
SEED = 20120827


def monolithic_release(backend, k, epsilon, rng):
    """The pre-refactor ``privbasis()`` body, inlined (paper plan).

    Kept deliberately plan-free and trace-free: this is the baseline
    the staged executor's overhead is measured against, and its
    outputs double as a golden reference (they must match the
    pipeline bit-for-bit under the same seed).
    """
    eta = 1.2 if k <= 100 else 1.1
    generator = ensure_rng(rng)
    budget = PrivacyBudget(epsilon)
    alpha1_eps, alpha2_eps, alpha3_eps = budget.split(DEFAULT_ALPHAS)
    lam = get_lambda(backend, k, alpha1_eps, eta=eta, rng=generator)
    budget.spend(alpha1_eps, "get_lambda")
    lam = min(lam, backend.num_items)
    if lam <= SINGLE_BASIS_LAMBDA:
        items = get_frequent_items(backend, lam, alpha2_eps, rng=generator)
        budget.spend(alpha2_eps, "get_frequent_items")
        basis_set = single_basis(items)
    else:
        lam2 = min(pair_budget_size(lam, k, eta), lam * (lam - 1) // 2)
        if lam2 >= 1:
            beta1_eps = alpha2_eps * lam / (lam + lam2)
            beta2_eps = alpha2_eps - beta1_eps
        else:
            beta1_eps, beta2_eps = alpha2_eps, 0.0
        items = get_frequent_items(backend, lam, beta1_eps, rng=generator)
        budget.spend(beta1_eps, "get_frequent_items")
        pairs = []
        if lam2 >= 1:
            pairs = get_frequent_pairs(
                backend, items, lam2, beta2_eps, rng=generator
            )
            budget.spend(beta2_eps, "get_frequent_pairs")
        basis_set = construct_basis_set(
            items, tuple(sorted(pairs)), DEFAULT_MAX_BASIS_LENGTH
        )
    release = basis_freq(backend, basis_set, k, alpha3_eps, rng=generator)
    budget.spend(alpha3_eps, "basis_freq")
    return release


def time_overhead(database, repeats: int) -> None:
    backend = BitmapBackend(database)
    backend.item_supports()  # warm the pools outside the timers

    published = [
        (entry.itemset, entry.noisy_count)
        for entry in monolithic_release(
            backend, K, EPSILON, rng=SEED
        ).itemsets
    ]
    staged = [
        (entry.itemset, entry.noisy_count)
        for entry in planned_release(
            backend, k=K, epsilon=EPSILON, rng=SEED
        ).itemsets
    ]
    assert staged == published, (
        "pipeline output diverged from the monolith under a fixed seed"
    )
    print("bit-identical outputs: OK")

    def clock(func) -> list:
        samples = []
        for repeat in range(repeats):
            started = time.perf_counter()
            func(repeat)
            samples.append((time.perf_counter() - started) * 1000.0)
        return samples

    mono = clock(
        lambda i: monolithic_release(backend, K, EPSILON, rng=SEED + i)
    )
    piped = clock(
        lambda i: planned_release(
            backend, k=K, epsilon=EPSILON, rng=SEED + i
        )
    )
    mono_ms = statistics.median(mono)
    piped_ms = statistics.median(piped)
    overhead = (piped_ms - mono_ms) / mono_ms * 100.0
    print(
        f"monolith median {mono_ms:.2f} ms, pipeline median "
        f"{piped_ms:.2f} ms over {repeats} releases "
        f"(overhead {overhead:+.1f}%)"
    )


def planner_utility(dataset: str, trials: int) -> dict:
    database = load_dataset(dataset)
    rows = {}
    for label, planner in (
        ("paper", PaperPlanner()),
        ("adaptive", AdaptivePlanner()),
    ):
        fnrs, res = run_trials(
            database,
            pb_spec(K, planner=planner),
            K,
            EPSILON,
            trials=trials,
            seed=SEED,
        )
        rows[label] = (sum(fnrs) / len(fnrs), sum(res) / len(res))
    print(f"\nplanner utility on {dataset} (k = {K}, eps = {EPSILON}):")
    print(f"{'planner':<10} FNR     RE")
    for label, (fnr, re) in rows.items():
        print(f"{label:<10} {fnr:<7.3f} {re:.4f}")
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI (equivalence + one utility point)",
    )
    arguments = parser.parse_args()
    repeats = 3 if arguments.smoke else REPEATS
    trials = 2 if arguments.smoke else UTILITY_TRIALS

    time_overhead(load_dataset("mushroom"), repeats)
    rows = planner_utility("mushroom", trials)
    # The adaptive planner must stay competitive where it reallocates
    # (single-basis regime): no worse than the paper split + slack.
    assert rows["adaptive"][0] <= rows["paper"][0] + 0.1
    if not arguments.smoke:
        planner_utility("pumsb_star", trials)


if __name__ == "__main__":
    main()
