"""Serving-layer benchmark: cold ``privbasis()`` vs warm sessions.

Two questions, matching the engine subsystem's two claims:

1. **Session reuse.**  A repeated ``(k, ε)`` workload — the serving
   scenario — is timed two ways: *cold*, where every release rebuilds
   all dataset-derived state from scratch (fresh
   :class:`TransactionDatabase`, cleared registry caches — i.e. what a
   stateless handler pays per request), and *warm*, where one
   :class:`~repro.engine.session.PrivBasisSession` serves all
   releases.  Every release draws fresh randomness in both modes; only
   exact intermediates are reused.  The acceptance bar is warm ≥ 3×
   cold per release.

2. **Backend choice.**  Per-primitive latencies of
   :class:`BitmapBackend` vs :class:`ShardedBackend` (several worker
   counts) on a larger database.  Sharding only pays on multi-core
   machines — the harness prints the core count so single-core results
   read correctly.

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_engine_serving.py``
or under pytest-benchmark: ``pytest benchmarks/bench_engine_serving.py -s``.
"""

from __future__ import annotations

import os
import time

from repro.core.privbasis import privbasis
from repro.datasets.registry import clear_caches
from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.datasets.transactions import TransactionDatabase
from repro.engine import BitmapBackend, PrivBasisSession, ShardedBackend

#: The serving workload: repeated top-k releases at one (k, ε).
K = 50
EPSILON = 1.0
NUM_RELEASES = 8

#: Synthetic benchmark dataset (IBM Quest generator, seeded).
SERVING_CONFIG = QuestConfig(
    num_transactions=40_000,
    num_items=120,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=40,
)
BACKEND_CONFIG = QuestConfig(
    num_transactions=200_000,
    num_items=120,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=40,
)


def _best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def bench_serving() -> dict:
    """Cold vs warm throughput on the repeated-(k, ε) workload."""
    database = generate_quest(SERVING_CONFIG, rng=3)
    rows = [
        database.transaction_array(index)
        for index in range(database.num_transactions)
    ]

    def cold_release(seed: int):
        # A stateless handler: fresh database object (indexes and all
        # caches rebuilt lazily), registry memos cleared.
        fresh = TransactionDatabase.from_sorted_rows(
            rows, database.num_items
        )
        clear_caches()
        return privbasis(fresh, k=K, epsilon=EPSILON, rng=seed)

    started = time.perf_counter()
    cold_results = [cold_release(seed) for seed in range(NUM_RELEASES)]
    cold_per_release = (time.perf_counter() - started) / NUM_RELEASES

    session = PrivBasisSession(database)
    session.release(k=K, epsilon=EPSILON, rng=0)  # cache fill
    started = time.perf_counter()
    warm_results = [
        session.release(k=K, epsilon=EPSILON, rng=seed)
        for seed in range(1, NUM_RELEASES)
    ]
    warm_per_release = (time.perf_counter() - started) / (
        NUM_RELEASES - 1
    )

    # Identical seeds must give identical outputs cold or warm.
    for cold, warm in zip(cold_results[1:], warm_results):
        assert [e.itemset for e in cold.itemsets] == [
            e.itemset for e in warm.itemsets
        ], "session caching changed a release"

    return {
        "cold_per_release_s": cold_per_release,
        "warm_per_release_s": warm_per_release,
        "speedup": cold_per_release / warm_per_release,
        "cache_info": session.cache_info(),
    }


def bench_backends() -> dict:
    """Per-primitive latency, bitmap vs sharded."""
    database = generate_quest(BACKEND_CONFIG, rng=3)
    basis = tuple(range(12))
    pool = list(range(30))
    variants = {
        "bitmap": BitmapBackend(database),
        "sharded(32k, workers=1)": ShardedBackend(
            database, shard_size=32_768, max_workers=1
        ),
        "sharded(32k, workers=auto)": ShardedBackend(
            database, shard_size=32_768
        ),
    }
    results = {}
    for name, backend in variants.items():
        setup = _best_of(lambda b=backend: b.item_supports(), repeats=1)
        results[name] = {
            "setup_s": setup,
            "bin_counts_s": _best_of(
                lambda b=backend: b.bin_counts(basis)
            ),
            "pairwise_s": _best_of(
                lambda b=backend: b.pairwise_supports(pool)
            ),
        }
    reference = BitmapBackend(database)
    for name, backend in variants.items():
        assert (
            backend.bin_counts(basis) == reference.bin_counts(basis)
        ).all(), name
    return results


def main() -> None:
    print(f"cpu count: {os.cpu_count()}")
    print(
        f"\n== serving: {NUM_RELEASES} releases of "
        f"(k={K}, eps={EPSILON}) over "
        f"N={SERVING_CONFIG.num_transactions} =="
    )
    serving = bench_serving()
    print(f"cold per release: {serving['cold_per_release_s']*1e3:8.2f} ms")
    print(f"warm per release: {serving['warm_per_release_s']*1e3:8.2f} ms")
    print(f"speedup:          {serving['speedup']:8.2f}x  (bar: >= 3x)")
    print(f"cache info:       {serving['cache_info']}")

    print(
        f"\n== backends over N={BACKEND_CONFIG.num_transactions} "
        f"(basis length {12}, pool {30}) =="
    )
    for name, numbers in bench_backends().items():
        print(
            f"{name:28s} setup {numbers['setup_s']*1e3:8.2f} ms   "
            f"bin_counts {numbers['bin_counts_s']*1e3:7.2f} ms   "
            f"pairwise {numbers['pairwise_s']*1e3:7.2f} ms"
        )
    print(
        "\n(sharded backends need >1 core to win; on one core they "
        "bound memory, not latency)"
    )


def bench_engine_serving(benchmark):
    """pytest-benchmark entry point (single timed run)."""
    from conftest import run_once

    result = run_once(benchmark, bench_serving)
    print(f"\nwarm speedup: {result['speedup']:.2f}x")
    assert result["speedup"] >= 3.0


if __name__ == "__main__":
    main()
