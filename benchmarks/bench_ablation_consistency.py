"""Ablation — consistency post-processing (extension beyond the paper).

The paper publishes raw noisy frequencies.  Differential privacy is
closed under post-processing, so the release can be repaired for free:
clamp counts to [0, N] and restore anti-monotonicity
(``X ⊆ Y ⇒ count(X) ≥ count(Y)``).  This bench measures what the
repair buys on the mushroom dataset across the ε grid, in mean
absolute count error over the released top-k.

Expected shape: large gains at small ε (noise dominates, many
violations to repair), vanishing gains at large ε (estimates already
consistent) — and the repair never hurts on average.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.core.postprocess import enforce_consistency, is_consistent
from repro.core.privbasis import privbasis
from repro.datasets.registry import load_dataset

K = 100
EPSILONS = (0.05, 0.1, 0.25, 0.5, 1.0)
TRIALS = 5


def _absolute_errors(database, release, repaired):
    raw_error = 0.0
    fixed_error = 0.0
    for entry in release.itemsets:
        truth = float(database.support(entry.itemset))
        raw_error += abs(entry.noisy_count - truth)
        fixed_error += abs(repaired[entry.itemset][0] - truth)
    return raw_error / len(release.itemsets), fixed_error / len(
        release.itemsets
    )


def bench_ablation_consistency(benchmark, root_seed):
    database = load_dataset("mushroom")
    n = database.num_transactions

    def measure():
        rows = []
        for epsilon in EPSILONS:
            raw_means = []
            fixed_means = []
            violations = 0
            for trial in range(TRIALS):
                release = privbasis(
                    database,
                    k=K,
                    epsilon=epsilon,
                    rng=root_seed + 101 * trial,
                )
                family = {
                    entry.itemset: (entry.noisy_count,
                                    entry.count_variance)
                    for entry in release.itemsets
                }
                if not is_consistent(family, num_transactions=n):
                    violations += 1
                repaired = enforce_consistency(
                    family, num_transactions=n
                )
                raw, fixed = _absolute_errors(
                    database, release, repaired
                )
                raw_means.append(raw)
                fixed_means.append(fixed)
            rows.append(
                (
                    epsilon,
                    float(np.mean(raw_means)),
                    float(np.mean(fixed_means)),
                    violations,
                )
            )
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        "ablation: consistency repair on mushroom "
        f"(k = {K}, {TRIALS} trials; mean |count error| per itemset)"
    )
    print("epsilon  raw        repaired   inconsistent-trials")
    for epsilon, raw, fixed, violations in rows:
        print(
            f"{epsilon:<8g} {raw:<10.2f} {fixed:<10.2f} "
            f"{violations}/{TRIALS}"
        )

    # The repair never hurts on average at any ε.
    for epsilon, raw, fixed, _ in rows:
        assert fixed <= raw * 1.02 + 1e-9, f"eps={epsilon}"

    # At the smallest ε the raw release is actually inconsistent and
    # the repair yields a strict improvement.
    smallest = rows[0]
    assert smallest[3] > 0
    assert smallest[2] < smallest[1]
