"""Baseline comparison — TF's two selection variants (paper Section 3).

The TF method selects its k itemsets either by (a) adding Laplace
noise to truncated frequencies and taking the top k, or (b) k rounds
of the exponential mechanism without replacement.  Bhaskar et al.
prove the same utility guarantee for both; the paper's experiments do
not separate them.  This bench runs both variants side by side on
mushroom to document that they are interchangeable here too — so the
reproduction's choice of the Laplace variant for the figures is not
load-bearing.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import run_trials, tf_spec

K = 50
M = 2
EPSILONS = (0.25, 0.5, 1.0)
TRIALS = 5


def bench_tf_variants(benchmark, root_seed):
    database = load_dataset("mushroom")

    def measure():
        rows = []
        for epsilon in EPSILONS:
            row = {"epsilon": epsilon}
            for variant in ("laplace", "em"):
                fnrs, res = run_trials(
                    database,
                    tf_spec(K, M, variant=variant),
                    K,
                    epsilon,
                    trials=TRIALS,
                    seed=root_seed,
                )
                row[variant] = (
                    sum(fnrs) / len(fnrs),
                    sum(res) / len(res),
                )
            rows.append(row)
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        f"TF selection variants on mushroom "
        f"(k = {K}, m = {M}, {TRIALS} trials)"
    )
    print("epsilon  laplace FNR/RE     em FNR/RE")
    for row in rows:
        lap = row["laplace"]
        em = row["em"]
        print(
            f"{row['epsilon']:<8g} {lap[0]:.3f} / {lap[1]:.4f}"
            f"     {em[0]:.3f} / {em[1]:.4f}"
        )

    # Interchangeable: no variant dominates by a wide margin anywhere.
    for row in rows:
        assert abs(row["laplace"][0] - row["em"][0]) <= 0.25
