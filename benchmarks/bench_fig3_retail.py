"""Figure 3 — Retail, k ∈ {50, 100}: larger λ, several bases of length 7.

Paper shape to reproduce:

* PB clearly better than TF at both k;
* retail is the hardest dataset for PB (many itemsets just below f_k,
  so FNR is the worst among the five datasets) — the assertion bounds
  are accordingly looser;
* TF (m = 1, the best-precision choice: γ forces singletons) has FNR
  near 1 at small ε and stays far above PB.
"""

from __future__ import annotations

from conftest import final_point, mean_over_grid, run_once, series_by_label

from repro.experiments.figures import run_figure


def bench_fig3_retail(benchmark, root_seed):
    result = run_once(benchmark, run_figure, "fig3", seed=root_seed)
    print()
    print(result.render())

    pb50 = series_by_label(result, "PB, k = 50")[0]
    pb100 = series_by_label(result, "PB, k = 100")[0]
    tf50 = series_by_label(result, "TF, k = 50")[0]
    tf100 = series_by_label(result, "TF, k = 100")[0]

    # PB wins on average across the grid at both k.
    assert mean_over_grid(pb50, "fnr") < mean_over_grid(tf50, "fnr")
    assert mean_over_grid(pb100, "fnr") < mean_over_grid(tf100, "fnr")

    # The paper's "worse than the other datasets on all accounts"
    # remark: PB FNR on retail need not reach 0, but must still be
    # usable at full budget.
    assert final_point(pb50, "fnr") <= 0.4
    assert final_point(pb100, "fnr") <= 0.5

    # TF's selection is near-random here at low ε.
    assert tf100.fnr_mean[0] >= 0.6
