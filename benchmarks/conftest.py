"""Shared benchmark helpers.

Every benchmark regenerates one paper artefact (table, figure, or
ablation).  The experiment itself runs exactly once per session —
``benchmark.pedantic(rounds=1, iterations=1)`` reports wall time
without re-running multi-minute sweeps — and the regenerated artefact
is printed so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction report.

Profiles (set ``REPRO_BENCH_PROFILE``):

* ``quick`` (default) — coarse ε grids, registry-scale datasets.
* ``paper`` — the paper's full ε grids; combine with
  ``REPRO_FULL_SCALE=1`` for paper-exact dataset sizes.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture(scope="session")
def root_seed() -> int:
    """Root seed for all benchmark randomness (the paper's VLDB date)."""
    return 20120827


def series_by_label(figure_result, prefix: str):
    """The figure's series whose labels start with ``prefix``."""
    return [
        series
        for series in figure_result.series
        if series.label.startswith(prefix)
    ]


def final_point(series, metric: str) -> float:
    """The metric value at the largest ε of a series."""
    values = getattr(series, f"{metric}_mean")
    return values[-1]


def mean_over_grid(series, metric: str) -> float:
    """The metric averaged over the whole ε grid of a series."""
    values = getattr(series, f"{metric}_mean")
    finite = [value for value in values if value == value]
    return sum(finite) / len(finite) if finite else float("nan")
