"""Ablation — Laplace vs geometric bin noise (extension).

The paper adds Laplace noise to bin counts.  The two-sided geometric
mechanism (Ghosh–Roughgarden–Sundararajan) is its discrete analogue
with strictly smaller variance (``2α/(1−α)² ≤ 2(Δ/ε)²``, ratio → 1
as ε → 0) and integer outputs.  This bench runs PrivBasis under both
mechanisms on mushroom across ε and reports FNR/RE — the expectation
is near-identical utility (the variance gap is a few percent in the
relevant ε range), making "geometric" a free choice when integer
releases are required.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials

K = 100
EPSILONS = (0.1, 0.5, 1.0)
TRIALS = 5


def bench_ablation_noise(benchmark, root_seed):
    database = load_dataset("mushroom")

    def measure():
        rows = []
        for epsilon in EPSILONS:
            row = {"epsilon": epsilon}
            for noise in ("laplace", "geometric"):
                fnrs, res = run_trials(
                    database,
                    pb_spec(K, noise=noise),
                    K,
                    epsilon,
                    trials=TRIALS,
                    seed=root_seed,
                )
                row[noise] = (
                    sum(fnrs) / len(fnrs),
                    sum(res) / len(res),
                )
            rows.append(row)
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        f"ablation: bin-noise mechanism on mushroom "
        f"(k = {K}, {TRIALS} trials)"
    )
    print("epsilon  laplace FNR/RE     geometric FNR/RE")
    for row in rows:
        lap_fnr, lap_re = row["laplace"]
        geo_fnr, geo_re = row["geometric"]
        print(
            f"{row['epsilon']:<8g} {lap_fnr:.3f} / {lap_re:.4f}"
            f"     {geo_fnr:.3f} / {geo_re:.4f}"
        )

    # The mechanisms are interchangeable in utility: neither side is
    # ever worse by more than a small margin at any ε.
    for row in rows:
        assert abs(row["laplace"][0] - row["geometric"][0]) <= 0.10
