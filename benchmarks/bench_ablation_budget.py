"""Ablation — privacy-budget allocation (α₁, α₂, α₃) via planners.

The paper (Section 4.4) uses the untuned split (0.1, 0.4, 0.5) and
notes "these choices were not tuned, and may not be optimal; it appears
that the optimal allocation depends on characteristics of the dataset".
This bench sweeps a small grid of :class:`BudgetPlanner` policies on
the mushroom dataset at a mid budget and reports FNR/RE per planner —
quantifying how sensitive PrivBasis is to the one hyper-parameter the
paper left open, through the same planner API the serving pipeline
uses (no split logic is re-implemented here).
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials
from repro.pipeline import AdaptivePlanner, CustomPlanner, PaperPlanner

#: Planner grid: the paper policy, axis-aligned α variations via
#: CustomPlanner, and the λ-driven adaptive policy.
PLANNER_GRID = (
    ("paper 0.1/0.4/0.5", PaperPlanner()),
    ("custom 0.1/0.2/0.7", CustomPlanner((0.1, 0.2, 0.7))),
    ("custom 0.1/0.6/0.3", CustomPlanner((0.1, 0.6, 0.3))),
    ("custom 0.3/0.3/0.4", CustomPlanner((0.3, 0.3, 0.4))),
    ("custom 0.05/0.45/0.5", CustomPlanner((0.05, 0.45, 0.5))),
    ("custom 0.2/0.4/0.4", CustomPlanner((0.2, 0.4, 0.4))),
    ("adaptive", AdaptivePlanner()),
)

K = 100
EPSILON = 0.5
TRIALS = 5


def bench_ablation_budget(benchmark, root_seed):
    database = load_dataset("mushroom")

    def measure():
        rows = []
        for label, planner in PLANNER_GRID:
            fnrs, res = run_trials(
                database,
                pb_spec(K, planner=planner),
                K,
                EPSILON,
                trials=TRIALS,
                seed=root_seed,
            )
            rows.append(
                (
                    label,
                    sum(fnrs) / len(fnrs),
                    sum(res) / len(res),
                )
            )
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        "ablation: budget planners on mushroom "
        f"(k = {K}, eps = {EPSILON}, {TRIALS} trials)"
    )
    print(f"{'planner':<22} FNR     RE")
    for label, fnr, re in rows:
        print(f"{label:<22} {fnr:<7.3f} {re:.4f}")

    by_label = {label: (fnr, re) for label, fnr, re in rows}

    # The paper's default must be competitive: within 0.15 FNR of the
    # best policy in the grid (it was chosen untuned, not optimal).
    best_fnr = min(fnr for _, fnr, _ in rows)
    default_fnr = by_label["paper 0.1/0.4/0.5"][0]
    assert default_fnr <= best_fnr + 0.15

    # The adaptive planner must not be worse than the paper's on the
    # single-basis dataset it is designed to help (it moves unused
    # selection budget into counting there).
    adaptive_fnr = by_label["adaptive"][0]
    assert adaptive_fnr <= default_fnr + 0.05

    # No policy in this neighbourhood is catastrophic on the
    # single-basis dataset — the algorithm is budget-robust here.
    assert all(fnr <= 0.5 for _, fnr, _ in rows)
