"""Ablation — privacy-budget allocation (α₁, α₂, α₃).

The paper (Section 4.4) uses the untuned split (0.1, 0.4, 0.5) and
notes "these choices were not tuned, and may not be optimal; it appears
that the optimal allocation depends on characteristics of the dataset".
This bench sweeps a small α-grid on the mushroom dataset at a mid
budget and reports FNR/RE per split — quantifying how sensitive
PrivBasis is to the one hyper-parameter the paper left open.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials

#: (α₁, α₂, α₃) grid: the paper default plus axis-aligned variations.
ALPHA_GRID = (
    (0.1, 0.4, 0.5),    # paper default
    (0.1, 0.2, 0.7),    # cheap selection, rich counting
    (0.1, 0.6, 0.3),    # rich selection, cheap counting
    (0.3, 0.3, 0.4),    # expensive lambda
    (0.05, 0.45, 0.5),  # cheap lambda
    (0.2, 0.4, 0.4),    # balanced
)

K = 100
EPSILON = 0.5
TRIALS = 5


def bench_ablation_budget(benchmark, root_seed):
    database = load_dataset("mushroom")

    def measure():
        rows = []
        for alphas in ALPHA_GRID:
            fnrs, res = run_trials(
                database,
                pb_spec(K, alphas=alphas),
                K,
                EPSILON,
                trials=TRIALS,
                seed=root_seed,
            )
            rows.append(
                (
                    alphas,
                    sum(fnrs) / len(fnrs),
                    sum(res) / len(res),
                )
            )
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        "ablation: budget allocation on mushroom "
        f"(k = {K}, eps = {EPSILON}, {TRIALS} trials)"
    )
    print("alpha1  alpha2  alpha3  FNR     RE")
    for (a1, a2, a3), fnr, re in rows:
        print(f"{a1:<7g} {a2:<7g} {a3:<7g} {fnr:<7.3f} {re:.4f}")

    by_alphas = {alphas: (fnr, re) for alphas, fnr, re in rows}

    # The paper's default must be competitive: within 0.15 FNR of the
    # best split in the grid (it was chosen untuned, not optimal).
    best_fnr = min(fnr for _, fnr, _ in rows)
    default_fnr = by_alphas[(0.1, 0.4, 0.5)][0]
    assert default_fnr <= best_fnr + 0.15

    # No split in this neighbourhood is catastrophic on the
    # single-basis dataset — the algorithm is budget-robust here.
    assert all(fnr <= 0.5 for _, fnr, _ in rows)
