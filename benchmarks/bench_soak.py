"""Cluster soak benchmark: sustained multi-tenant load under faults.

Replays hundreds of thousands of synthetic requests against a real
:class:`~repro.service.cluster.PrivBasisCluster` — N spawned worker
processes behind the dataset-affinity router, sharing one durable
``state_dir`` — while a fault injector ``SIGKILL``s workers mid-flight
and the supervisor restarts them.  After **every** kill (and at the
end of every leg) the cluster-wide ledger invariant is checked straight
from the journal files:

    journaled spent ε  ≥  ε of the releases clients actually received

per tenant (:func:`repro.store.read_spent_totals`).  A crash may
forfeit budget, never mint it; any violation fails the run.

The request mix models an analyst fleet: mostly cheap reads
(``/v1/snapshot``, ``/v1/budget``), ~10% paid releases, ~2% ingests.
Latency is recorded per request and reported as p50/p99 per worker
count into ``BENCH_service.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_soak.py
    PYTHONPATH=src python benchmarks/bench_soak.py --smoke   # CI

``--smoke`` runs one small leg (2 workers, a few hundred requests,
one kill) so CI exercises the whole cluster path — spawn, router,
shared ledger, kill, restart, invariant — on every push.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Optional, Tuple

from repro.datasets.synthetic import QUEST_LOADER_SPEC
from repro.errors import OverloadedError, WorkerUnavailableError
from repro.service import ClusterConfig, PrivBasisCluster, ServiceClient
from repro.store import read_spent_totals

#: (workers, requests) legs of the full sweep.  The last leg is the
#: acceptance scenario: >= 100k requests across >= 4 workers.
SWEEP: List[Tuple[int, int]] = [(1, 5_000), (2, 5_000), (4, 100_000)]
SMOKE_SWEEP: List[Tuple[int, int]] = [(2, 400)]

NUM_TENANTS = 8
NUM_DATASETS = 4
CONCURRENCY = 16
MAX_INFLIGHT = 32
KILLS_PER_LEG = 3
SMOKE_KILLS = 1
RELEASE_EPSILON = 1e-4
EPSILON_LIMIT = 1e9

#: Request mix by cumulative per-mille bucket of the request index.
RELEASE_PERMILLE = 100   # 10.0% POST /v1/release
INGEST_PERMILLE = 120    # +2.0% POST /v1/ingest
BUDGET_PERMILLE = 170    # +5.0% GET /v1/budget ; rest GET /v1/snapshot


def tenant_mapping() -> Dict[str, Dict[str, object]]:
    """Tenants spread over the soak datasets (quest loader names)."""
    return {
        f"soak-{index}": {
            "dataset": f"soak/{index % NUM_DATASETS}",
            "epsilon_limit": EPSILON_LIMIT,
        }
        for index in range(NUM_TENANTS)
    }


def percentile(sorted_values: List[float], fraction: float) -> float:
    """The ``fraction`` percentile of an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = min(
        len(sorted_values) - 1,
        int(round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


class SoakStats:
    """Per-leg counters, latencies, and the acked-ε floor.

    ``acked`` only grows when a client *received* a 2xx for a release,
    so snapshotting it before reading the journal gives a valid lower
    bound: write-ahead + the pre-response barrier mean every acked
    release's debit was durable before the ack existed.
    """

    def __init__(self) -> None:
        self.ok = 0
        self.unavailable = 0
        self.overloaded = 0
        self.latencies_ms: List[float] = []
        self.release_latencies_ms: List[float] = []
        self.acked: Dict[str, float] = {}

    def record(
        self, kind: str, tenant: str, outcome: str, elapsed_ms: float
    ) -> None:
        self.latencies_ms.append(elapsed_ms)
        if outcome == "ok":
            self.ok += 1
            if kind == "release":
                self.release_latencies_ms.append(elapsed_ms)
                self.acked[tenant] = (
                    self.acked.get(tenant, 0.0) + RELEASE_EPSILON
                )
        elif outcome == "unavailable":
            self.unavailable += 1
        else:
            self.overloaded += 1

    def check_invariant(self, state_dir: str) -> List[str]:
        """Journaled spent ε must cover every acked release's ε."""
        floor = dict(self.acked)  # snapshot BEFORE reading the journal
        totals = read_spent_totals(state_dir)
        return [
            f"{tenant}: journaled {totals.get(tenant, 0.0):.6f} < "
            f"acked {spent:.6f}"
            for tenant, spent in floor.items()
            if totals.get(tenant, 0.0) < spent - 1e-9
        ]


async def drive_one(
    client: ServiceClient, index: int, stats: SoakStats
) -> None:
    """Issue request ``index`` per the mix and record its outcome."""
    tenant = f"soak-{index % NUM_TENANTS}"
    bucket = index % 1000
    if bucket < RELEASE_PERMILLE:
        kind = "release"
    elif bucket < INGEST_PERMILLE:
        kind = "ingest"
    elif bucket < BUDGET_PERMILLE:
        kind = "budget"
    else:
        kind = "snapshot"
    started = time.perf_counter()
    outcome = "ok"
    try:
        if kind == "release":
            await client.release(
                k=3, epsilon=RELEASE_EPSILON, tenant=tenant
            )
        elif kind == "ingest":
            await client.ingest([[index % 9, 9]], tenant=tenant)
        elif kind == "budget":
            await client.budget(tenant=tenant)
        else:
            await client.snapshot(tenant=tenant)
    except WorkerUnavailableError:
        outcome = "unavailable"
    except OverloadedError:
        outcome = "overloaded"
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    stats.record(kind, tenant, outcome, elapsed_ms)


async def run_leg(
    workers: int,
    total_requests: int,
    kills: int,
    state_dir: str,
) -> Dict[str, object]:
    """One sweep leg: a fresh cluster, the mix, the fault injector."""
    config = ClusterConfig(
        tenants=tenant_mapping(),
        state_dir=state_dir,
        num_workers=workers,
        loader_spec=QUEST_LOADER_SPEC,
        max_inflight=MAX_INFLIGHT,
    )
    cluster = PrivBasisCluster(config)
    stats = SoakStats()
    violations: List[str] = []
    issued = 0

    async with cluster.serving() as (host, port):

        async def client_loop() -> None:
            nonlocal issued
            async with ServiceClient(host, port) as client:
                while True:
                    index = issued
                    if index >= total_requests:
                        return
                    issued += 1
                    await drive_one(client, index, stats)

        async def fault_injector() -> None:
            kill_points = [
                total_requests * (point + 1) // (kills + 1)
                for point in range(kills)
            ]
            for number, kill_at in enumerate(kill_points):
                while issued < kill_at:
                    await asyncio.sleep(0.05)
                # Kill the worker *owning* a dataset in the mix, so
                # every injected fault disrupts live traffic instead
                # of an idle worker (rendezvous hashing can leave one).
                owner = cluster.router.owner_for(
                    f"soak/{number % NUM_DATASETS}"
                )
                victim = (
                    owner.index if owner is not None else number % workers
                )
                cluster.kill_worker(victim)
                print(
                    f"    kill #{number + 1}: worker {victim} at "
                    f"request {issued}/{total_requests}"
                )
                await asyncio.sleep(0.2)
                found = stats.check_invariant(state_dir)
                violations.extend(found)
                for line in found:
                    print(f"    INVARIANT VIOLATION: {line}")

        started = time.perf_counter()
        tasks = [
            asyncio.create_task(client_loop())
            for _ in range(CONCURRENCY)
        ]
        injector = asyncio.create_task(fault_injector())
        await asyncio.gather(*tasks)
        injector.cancel()
        try:
            await injector
        except asyncio.CancelledError:
            pass
        wall_s = time.perf_counter() - started
        # Let in-flight respawns finish so the restart count reflects
        # every injected kill (the traffic may outrun the supervisor).
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 15.0
        while (
            cluster.router.healthy_count() < workers
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.1)
        restarts = cluster.restarts

    # Final check with the cluster stopped: the journal alone answers.
    violations.extend(stats.check_invariant(state_dir))

    ordered = sorted(stats.latencies_ms)
    releases = sorted(stats.release_latencies_ms)
    return {
        "workers": workers,
        "requests": total_requests,
        "kills": kills,
        "restarts": restarts,
        "ok": stats.ok,
        "unavailable": stats.unavailable,
        "overloaded": stats.overloaded,
        "invariant_violations": len(violations),
        "violation_detail": violations,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(total_requests / wall_s, 1),
        "p50_ms": round(percentile(ordered, 0.50), 3),
        "p99_ms": round(percentile(ordered, 0.99), 3),
        "release_p50_ms": round(percentile(releases, 0.50), 3),
        "release_p99_ms": round(percentile(releases, 0.99), 3),
    }


async def run_benchmark(smoke: bool) -> List[Dict[str, object]]:
    """Run every sweep leg, each against a fresh state directory."""
    sweep = SMOKE_SWEEP if smoke else SWEEP
    kills = SMOKE_KILLS if smoke else KILLS_PER_LEG
    results: List[Dict[str, object]] = []
    for workers, total_requests in sweep:
        print(
            f"== leg: {workers} worker(s), {total_requests} requests, "
            f"{kills} kill(s) =="
        )
        with TemporaryDirectory(prefix="soak-state-") as state_dir:
            leg = await run_leg(
                workers, total_requests, kills, state_dir
            )
        results.append(leg)
        print(
            f"    {leg['ok']} ok / {leg['unavailable']} unavailable / "
            f"{leg['overloaded']} overloaded; "
            f"{leg['restarts']} restart(s); "
            f"p50={leg['p50_ms']}ms p99={leg['p99_ms']}ms; "
            f"{leg['throughput_rps']} req/s; "
            f"violations={leg['invariant_violations']}"
        )
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """Run the soak sweep and write ``BENCH_service.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small leg (2 workers, ~400 requests, one kill) — "
             "the CI cluster-path check",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="JSON output path (default: BENCH_service.json next to "
             "the repo root)",
    )
    arguments = parser.parse_args(argv)

    results = asyncio.run(run_benchmark(arguments.smoke))

    payload = {
        "benchmark": "bench_soak",
        "cpu_count": os.cpu_count() or 1,
        "smoke": arguments.smoke,
        "config": {
            "tenants": NUM_TENANTS,
            "datasets": NUM_DATASETS,
            "concurrency": CONCURRENCY,
            "max_inflight": MAX_INFLIGHT,
            "release_epsilon": RELEASE_EPSILON,
            "mix_permille": {
                "release": RELEASE_PERMILLE,
                "ingest": INGEST_PERMILLE - RELEASE_PERMILLE,
                "budget": BUDGET_PERMILLE - INGEST_PERMILLE,
                "snapshot": 1000 - BUDGET_PERMILLE,
            },
        },
        "results": results,
    }
    output = Path(
        arguments.output
        if arguments.output
        else Path(__file__).resolve().parent.parent
        / "BENCH_service.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    total_violations = sum(
        leg["invariant_violations"] for leg in results
    )
    if total_violations:
        print(f"FAILED: {total_violations} ledger invariant violation(s)")
        return 1
    if arguments.smoke:
        print("smoke ok: cluster served, survived a kill, ledger exact")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
