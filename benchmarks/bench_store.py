"""Store benchmark: journaled vs in-memory release overhead.

Durability must not tax the hot path into uselessness: the service
journals an ε debit before every release and stores the released
payload after it, with one fsync barrier immediately before the
answer leaves the process.  This benchmark measures what that
discipline costs per release against the pure in-memory path, across
the three WAL fsync policies:

* ``memory``  — plain ``session.release`` (the pre-durability code);
* ``batch``   — the production setting: debit + result buffered, one
  barrier fsync per release (overlapping releases would share it);
* ``always``  — every WAL append fsyncs individually (the naive
  write-ahead implementation this repo deliberately avoids);
* ``never``   — WAL writes without fsync (the non-durability ceiling:
  what the journaling bookkeeping alone costs).

After the timed runs the benchmark "restarts": it reopens the state
directory and asserts the recovered journal matches the in-memory
ledger exactly — the benchmark doubles as an equivalence check.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --smoke   # CI

``--smoke`` shrinks the workload so CI exercises the journaled path
and the recovery equivalence on every push in a few seconds.
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import tempfile
import time
from typing import Dict, List

import numpy as np

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.engine.session import PrivBasisSession
from repro.store.state import StateStore

CONFIG = QuestConfig(
    num_transactions=20_000,
    num_items=120,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=30,
)
RELEASES, K, EPSILON = 40, 25, 0.5

SMOKE_CONFIG = QuestConfig(
    num_transactions=1_500,
    num_items=50,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=15,
)
SMOKE_RELEASES = 6

#: Full-run bound on the batch-fsync overhead vs in-memory.  The
#: ISSUE target is ~10%; the assertion leaves headroom for noisy CI
#: disks while still catching a regression to per-append fsyncs.
MAX_BATCH_OVERHEAD = 0.25


def timed_releases(session, store, tenant: str, releases: int) -> List[float]:
    """Per-release wall times following the service's discipline."""
    from repro.service.protocol import result_to_wire

    timings: List[float] = []
    rng = np.random.default_rng(7)
    for index in range(releases):
        started = time.perf_counter()
        if store is not None:
            store.ledger.debit(tenant, EPSILON, f"release[{index}]")
        result = session.release(k=K, epsilon=EPSILON, rng=rng)
        if store is not None:
            store.results.record(
                tenant, "bench", result.snapshot_version,
                result_to_wire(result),
            )
            store.barrier()
        timings.append(time.perf_counter() - started)
    return timings


def run_variant(
    database, fsync: str | None, releases: int
) -> Dict[str, object]:
    """One timed run; ``fsync=None`` is the pure in-memory variant."""
    session = PrivBasisSession(database)
    session.warm_up()
    session.release(k=K, epsilon=EPSILON, rng=3)  # pay cold costs once
    state_dir = None
    store = None
    if fsync is not None:
        state_dir = tempfile.mkdtemp(prefix=f"bench_store_{fsync}_")
        store = StateStore(state_dir, fsync=fsync)
    timings = timed_releases(session, store, "bench-tenant", releases)
    summary: Dict[str, object] = {
        "median_ms": statistics.median(timings) * 1e3,
        "fsyncs": 0,
    }
    if store is not None:
        summary["fsyncs"] = store.ledger.stats()["fsyncs"]
        expected = session.epsilon_spent - EPSILON  # minus the warm-up
        store.close()
        # The "restart": recover the directory and check equivalence.
        with StateStore(state_dir) as recovered:
            journaled = recovered.ledger.spent("bench-tenant")
            assert abs(journaled - expected) < 1e-9, (
                f"recovered journal {journaled} != ledger {expected}"
            )
            assert len(recovered.results) == releases
        shutil.rmtree(state_dir, ignore_errors=True)
    return summary


def main(argv: List[str] | None = None) -> int:
    """Run the comparison and print per-policy overheads."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload only (CI journaled-path + recovery check)",
    )
    arguments = parser.parse_args(argv)
    config = SMOKE_CONFIG if arguments.smoke else CONFIG
    releases = SMOKE_RELEASES if arguments.smoke else RELEASES
    database = generate_quest(config, rng=7)
    print(
        f"== store overhead: N={database.num_transactions}, "
        f"{releases} releases of k={K}, epsilon={EPSILON} =="
    )

    baseline = run_variant(database, None, releases)
    base_ms = baseline["median_ms"]
    print(f"{'memory':<8} {base_ms:8.2f} ms/release   (baseline)")

    overheads: Dict[str, float] = {}
    for fsync in ("never", "batch", "always"):
        run = run_variant(database, fsync, releases)
        overhead = run["median_ms"] / base_ms - 1.0
        overheads[fsync] = overhead
        print(
            f"{fsync:<8} {run['median_ms']:8.2f} ms/release   "
            f"overhead: {overhead:+7.1%}   fsyncs: {run['fsyncs']}"
        )

    if not arguments.smoke:
        assert overheads["batch"] < MAX_BATCH_OVERHEAD, (
            f"batched journaling costs {overheads['batch']:.1%} "
            f">= {MAX_BATCH_OVERHEAD:.0%} over in-memory"
        )
    print(
        "recovery equivalence ok: journaled spent == session ledger "
        "for every policy" + ("  (smoke)" if arguments.smoke else "")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
