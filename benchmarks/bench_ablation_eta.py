"""Ablation — the safety-margin parameter η (paper Section 4.4).

GetLambda targets the frequency of the (η·k)-th itemset rather than
the k-th, "to avoid the error in which the obtained λ is too small,
because then we may miss a significant number of top k itemsets".
The paper sets η to 1.1 or 1.2 "depending on k" without further
analysis.  This bench sweeps η on retail (the dataset most sensitive
to missing items: many itemsets sit just below f_k) and checks the
paper's qualitative argument:

* η = 1.0 (no margin) is the riskiest setting — λ underestimates
  cost recall;
* moderate margins (1.1–1.2) help or tie;
* very large margins dilute the selection/counting budget and
  eventually hurt.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials

ETAS = (1.0, 1.1, 1.2, 1.5, 2.0)
K = 100
EPSILON = 0.5
TRIALS = 6


def bench_ablation_eta(benchmark, root_seed):
    database = load_dataset("retail")

    def measure():
        rows = []
        for eta in ETAS:
            fnrs, res = run_trials(
                database,
                pb_spec(K, eta=eta),
                K,
                EPSILON,
                trials=TRIALS,
                seed=root_seed,
            )
            rows.append(
                (eta, sum(fnrs) / len(fnrs), sum(res) / len(res))
            )
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        f"ablation: safety margin eta on retail "
        f"(k = {K}, eps = {EPSILON}, {TRIALS} trials)"
    )
    print("eta   FNR     RE")
    for eta, fnr, re in rows:
        print(f"{eta:<5g} {fnr:<7.3f} {re:.4f}")

    by_eta = dict((eta, fnr) for eta, fnr, _ in rows)

    # The paper's settings are competitive: within noise of the best.
    best = min(by_eta.values())
    assert min(by_eta[1.1], by_eta[1.2]) <= best + 0.08

    # Nothing in the sweep is catastrophic (PB degrades gracefully in
    # its one tunable).
    assert all(fnr <= 0.6 for fnr in by_eta.values())
