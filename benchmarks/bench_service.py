"""Service benchmark: throughput/latency over the real socket path.

Measures the network serving layer end to end — HTTP framing, tenant
ledger accounting, coalescing, executor hand-off, and the mining work
itself — in three regimes:

* **cold** — the first release against an unwarmed service: pays
  dataset load, bitmap build, and the full Algorithm 1 scan;
* **warm** — repeated releases at the same ``k``: every exact
  intermediate comes from the session caches, only noise is fresh;
* **coalesced** — a concurrent burst of cold requests from many
  tenants against one dataset: the coalescer should collapse all
  cold-start work into a single build, so the burst's total wall time
  stays near one cold release, not N of them.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI

``--smoke`` serves one cold and one warm request only — it exists so
CI exercises the full server path (socket, HTTP parsing, ledgers) on
every push without paying benchmark-scale work.
"""

from __future__ import annotations

import argparse
import asyncio
import statistics
import time
from typing import Dict, List

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.service import PrivBasisService, ServiceClient, TenantRegistry

K = 50
EPSILON = 1.0
WARM_RELEASES = 12
BURST_TENANTS = 6

#: Synthetic workload (IBM Quest generator, seeded) served under its
#: own name through the injected loader — custom loaders own their
#: dataset namespace.
DATASET = "quest_synthetic"
CONFIG = QuestConfig(
    num_transactions=40_000,
    num_items=120,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=40,
)
SMOKE_CONFIG = QuestConfig(
    num_transactions=2_000,
    num_items=60,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=20,
)


def build_service(smoke: bool) -> PrivBasisService:
    """A service whose tenants all share one synthetic dataset."""
    database = generate_quest(SMOKE_CONFIG if smoke else CONFIG, rng=3)
    tenants = {
        f"tenant{i}": {"dataset": DATASET, "epsilon_limit": 1000.0}
        for i in range(BURST_TENANTS)
    }
    return PrivBasisService(
        TenantRegistry.from_mapping(tenants),
        dataset_loader=lambda name: database,
        max_inflight=BURST_TENANTS + 2,
    )


async def timed_release(host: str, port: int, tenant: str) -> float:
    """One release over its own connection; returns seconds taken."""
    async with ServiceClient(host, port, tenant=tenant) as client:
        started = time.perf_counter()
        result = await client.release(k=K, epsilon=EPSILON)
        elapsed = time.perf_counter() - started
    assert result["itemsets"], "release returned no itemsets"
    return elapsed


async def run_benchmark(smoke: bool) -> Dict[str, object]:
    """Serve the three regimes and collect latency numbers."""
    service = build_service(smoke)
    numbers: Dict[str, object] = {}
    async with service.serving() as (host, port):
        cold = await timed_release(host, port, "tenant0")
        numbers["cold_s"] = cold

        warm_count = 1 if smoke else WARM_RELEASES
        async with ServiceClient(host, port, tenant="tenant0") as client:
            warm: List[float] = []
            for _ in range(warm_count):
                started = time.perf_counter()
                await client.release(k=K, epsilon=EPSILON)
                warm.append(time.perf_counter() - started)
        numbers["warm_s"] = statistics.median(warm)
        numbers["warm_throughput_rps"] = warm_count / sum(warm)

        if not smoke:
            # Fresh service → genuinely cold burst, all tenants at once.
            burst_service = build_service(smoke)
            async with burst_service.serving() as (bhost, bport):
                started = time.perf_counter()
                await asyncio.gather(
                    *(
                        timed_release(bhost, bport, f"tenant{i}")
                        for i in range(BURST_TENANTS)
                    )
                )
                numbers["burst_wall_s"] = time.perf_counter() - started
                metrics = burst_service.handle_metrics()
                numbers["burst_coalescer"] = metrics["coalescer"]

        metrics = service.handle_metrics()
        numbers["cache"] = metrics["datasets"][DATASET]["cache"]
    return numbers


def main(argv: List[str] | None = None) -> int:
    """Run the benchmark (or the CI smoke variant) and print results."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one cold + one warm request only (CI server-path check)",
    )
    arguments = parser.parse_args(argv)
    numbers = asyncio.run(run_benchmark(arguments.smoke))

    print(
        f"== service over N="
        f"{(SMOKE_CONFIG if arguments.smoke else CONFIG).num_transactions}"
        f" (k={K}, eps={EPSILON}) =="
    )
    print(f"cold release:  {numbers['cold_s'] * 1e3:8.2f} ms")
    print(f"warm release:  {numbers['warm_s'] * 1e3:8.2f} ms (median)")
    print(
        f"warm rate:     {numbers['warm_throughput_rps']:8.1f} releases/s"
    )
    if "burst_wall_s" in numbers:
        burst_wall = numbers["burst_wall_s"]
        print(
            f"coalesced burst of {BURST_TENANTS} cold tenants: "
            f"{burst_wall * 1e3:8.2f} ms wall "
            f"({burst_wall / numbers['cold_s']:.2f}x one cold release; "
            f"uncoalesced would approach {BURST_TENANTS}x)"
        )
        print(f"burst coalescer: {numbers['burst_coalescer']}")
        coalescer = numbers["burst_coalescer"]
        assert coalescer["started"] == 1, "burst built more than once"
        assert coalescer["coalesced"] == BURST_TENANTS - 1
    print(f"cache: {numbers['cache']}")
    if arguments.smoke:
        print("smoke ok: served one cold and one warm release")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
