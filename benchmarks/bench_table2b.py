"""Table 2(b) — effectiveness of the TF approach.

Regenerates the paper's γ-vs-f_k analysis at ε = 1 (the most favourable
setting for TF).  The paper's claim: "in many datasets with large k
(k ≥ 100, or k ≥ 200), we have γ larger than, or very close to f_k" —
i.e. TF's truncated-frequency pruning and its utility guarantee are
vacuous exactly where large-k mining matters.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_table2b, table2b


def bench_table2b(benchmark):
    rows = run_once(benchmark, table2b)
    print()
    print(render_table2b(rows))

    by_name = {row.dataset: row for row in rows}
    assert set(by_name) == {
        "retail", "mushroom", "pumsb_star", "kosarak", "aol",
    }

    # γ grows like 4km·ln|I|/(εN): the large-m / large-k rows must be
    # degenerate (γ ≥ f_k), reproducing the infeasibility claim.
    assert by_name["retail"].is_degenerate
    assert by_name["mushroom"].is_degenerate
    assert by_name["kosarak"].is_degenerate

    # pumsb-star at ε = 1 is the paper's borderline row: γ·N = 21235
    # vs f_k·N = 28613 — close to but below f_k.  "Very close" means
    # within a small factor.
    pumsb = by_name["pumsb_star"]
    assert pumsb.gamma_count > 0.5 * pumsb.fk_count

    # |U| magnitudes match the paper: ~|I|^m.
    assert by_name["pumsb_star"].universe_size > 10**8
    assert by_name["kosarak"].universe_size > 10**8

    # At a 10x smaller ε every dataset degenerates (γ scales as 1/ε).
    for row in table2b(epsilon=0.1):
        assert row.is_degenerate, row.dataset
