"""Out-of-core data plane benchmark: peak RSS + wall per tier.

Sweeps the disk-backed synthetic tiers
(:data:`repro.datasets.registry.TIERS`) through both data planes —
``memory`` (chunked load materialized into a RAM-resident
:class:`~repro.engine.bitmap.BitmapBackend`) and ``mmap`` (chunked
load spilled straight into :class:`~repro.engine.mmap.MmapShardStore`
segments and served by ``ShardedBackend.from_store``) — running one
release's worth of counting primitives on each.  Every tier × plane
runs in its **own subprocess** so ``ru_maxrss`` (a process-lifetime
high-water mark) isolates that configuration's true peak, and both
planes must produce **bit-identical** counting answers (compared by
digest across the process boundary; asserted).

The mmap plane's point is bounded residency: the large tier must
finish under its configured peak-RSS target while the memory plane is
free to use whatever it needs.  Results land in
``BENCH_outofcore.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_outofcore.py
    PYTHONPATH=src python benchmarks/bench_outofcore.py --smoke  # CI

``--smoke`` restricts the sweep to the tiny tier so CI exercises the
generate → spill → attach → count → compare path in seconds.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Per-tier mmap-plane configuration: resident shard-cache budget and
#: the peak-RSS target the large tier is asserted against.  The RSS
#: target covers interpreter + numpy + one working set of mapped
#: pages; the memory plane routinely exceeds it on the large tier
#: (bitmap rows alone are ``num_items × N/8`` bytes).
TIER_PLANS: Dict[str, Dict[str, int]] = {
    "tier-tiny": {"budget_mb": 16, "rss_target_mb": 0},
    "tier-small": {"budget_mb": 32, "rss_target_mb": 0},
    "tier-large": {"budget_mb": 64, "rss_target_mb": 512},
}

#: Counting workload sizes (paper regimes: λ-pool pairwise sweep,
#: length-≤8 bases, a k-sized conjunction batch, one extension sweep).
POOL_SIZE = 20
NUM_BASES, BASIS_LENGTH = 5, 6
NUM_CONJUNCTIONS = 50
NUM_CANDIDATES = 40


def make_queries(num_items: int, seed: int):
    import numpy as np

    rng = np.random.default_rng(seed)
    pick = lambda size: sorted(  # noqa: E731 — tiny local helper
        int(item)
        for item in rng.choice(num_items, size=size, replace=False)
    )
    pool = pick(min(POOL_SIZE, num_items))
    bases = [
        pick(min(BASIS_LENGTH, num_items)) for _ in range(NUM_BASES)
    ]
    itemsets = [
        tuple(pick(int(size)))
        for size in rng.integers(1, 4, size=NUM_CONJUNCTIONS)
    ]
    base = pick(2)
    candidates = pick(min(NUM_CANDIDATES, num_items))
    return pool, bases, itemsets, base, candidates


def digest_answers(answers) -> str:
    """Stable digest of the counting answers (crosses processes)."""

    def normalize(value):
        if hasattr(value, "tolist"):
            return value.tolist()
        if isinstance(value, dict):
            return sorted(
                (list(key), int(item)) for key, item in value.items()
            )
        if isinstance(value, (list, tuple)):
            return [normalize(entry) for entry in value]
        return value

    payload = json.dumps(normalize(answers), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_workload(backend, num_items: int) -> Dict[str, object]:
    pool, bases, itemsets, base, candidates = make_queries(
        num_items, seed=2012
    )
    timings: Dict[str, float] = {}
    started = time.perf_counter()
    items = backend.item_supports()
    timings["item_supports_s"] = time.perf_counter() - started
    started = time.perf_counter()
    pairs = backend.pairwise_supports(pool)
    timings["pairwise_supports_s"] = time.perf_counter() - started
    started = time.perf_counter()
    bins = backend.bin_counts_batch(bases)
    timings["bin_counts_batch_s"] = time.perf_counter() - started
    started = time.perf_counter()
    conjunctions = backend.conjunction_supports(itemsets)
    timings["conjunction_supports_s"] = time.perf_counter() - started
    started = time.perf_counter()
    extensions = backend.extension_supports(base, candidates)
    timings["extension_supports_s"] = time.perf_counter() - started
    digest = digest_answers(
        [items, pairs, bins, conjunctions, extensions]
    )
    return {"timings": timings, "digest": digest}


def child_main(arguments) -> int:
    """One tier × plane measurement (runs in its own process)."""
    from repro.datasets.chunked import iter_transaction_chunks
    from repro.datasets.registry import TIERS, ensure_tier_file

    spec = TIERS[arguments.tier]
    path = ensure_tier_file(arguments.tier)
    record: Dict[str, object] = {
        "tier": arguments.tier,
        "plane": arguments.plane,
        "num_transactions": spec.num_transactions,
        "num_items": spec.num_items,
    }

    started = time.perf_counter()
    chunks = iter_transaction_chunks(path, num_items=spec.num_items)
    if arguments.plane == "mmap":
        from repro.engine.mmap import MmapShardStore
        from repro.engine.sharded import ShardedBackend

        budget = arguments.budget_mb * 1024 * 1024
        spill_dir = Path(tempfile.mkdtemp(prefix="bench-outofcore-"))
        store = MmapShardStore.build(
            spill_dir / "shards",
            chunks,
            num_items=spec.num_items,
            memory_budget_bytes=budget,
        )
        backend = ShardedBackend.from_store(store)
        record["spilled_bytes"] = store.spilled_bytes()
        record["budget_mb"] = arguments.budget_mb
    else:
        from repro.datasets.chunked import load_chunked
        from repro.engine.bitmap import BitmapBackend

        database = load_chunked(
            path, num_items=spec.num_items, format="fimi"
        )
        backend = BitmapBackend(database)
    record["build_s"] = round(time.perf_counter() - started, 6)

    outcome = run_workload(backend, spec.num_items)
    backend.close()
    record["digest"] = outcome["digest"]
    record.update(
        {
            kind: round(value, 6)
            for kind, value in outcome["timings"].items()
        }
    )
    record["query_s"] = round(sum(outcome["timings"].values()), 6)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports ru_maxrss in KiB.
    record["peak_rss_bytes"] = int(usage.ru_maxrss) * 1024
    print(json.dumps(record))
    return 0


def run_child(
    tier: str, plane: str, budget_mb: int
) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(SRC_DIR)
    )
    completed = subprocess.run(
        [
            sys.executable, os.fspath(Path(__file__).resolve()),
            "--child", "--tier", tier, "--plane", plane,
            "--budget-mb", str(budget_mb),
        ],
        env=env, capture_output=True, text=True, check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{tier}/{plane} child failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout.splitlines()[-1])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tier only (CI spill/attach/equivalence check)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="JSON output path (default: BENCH_outofcore.json)",
    )
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--tier", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--plane", default="mmap",
                        help=argparse.SUPPRESS)
    parser.add_argument("--budget-mb", type=int, default=64,
                        help=argparse.SUPPRESS)
    arguments = parser.parse_args(argv)
    if arguments.child:
        return child_main(arguments)

    from repro.datasets.registry import ensure_tier_file, tier_names

    tiers = ["tier-tiny"] if arguments.smoke else list(tier_names())
    results: List[Dict[str, object]] = []
    failures: List[str] = []
    for tier in tiers:
        plan = TIER_PLANS[tier]
        ensure_tier_file(tier)  # generate once, outside the timings
        records = {
            plane: run_child(tier, plane, plan["budget_mb"])
            for plane in ("memory", "mmap")
        }
        if records["memory"]["digest"] != records["mmap"]["digest"]:
            failures.append(
                f"{tier}: memory and mmap planes answered differently"
            )
        target_mb = plan["rss_target_mb"]
        mmap_rss = records["mmap"]["peak_rss_bytes"]
        if target_mb and mmap_rss > target_mb * 1024 * 1024:
            failures.append(
                f"{tier}: mmap peak RSS {mmap_rss / 2**20:.0f} MiB "
                f"exceeds the {target_mb} MiB target"
            )
        for plane in ("memory", "mmap"):
            record = records[plane]
            record["rss_target_mb"] = target_mb if plane == "mmap" else None
            results.append(record)
            print(
                f"{tier:<11} {plane:<7} "
                f"build={record['build_s']:.3f}s "
                f"query={record['query_s']:.3f}s "
                f"peak_rss={record['peak_rss_bytes'] / 2**20:.0f}MiB"
            )

    output = Path(
        arguments.output
        or Path(__file__).resolve().parent.parent
        / "BENCH_outofcore.json"
    )
    output.write_text(
        json.dumps(
            {
                "benchmark": "outofcore",
                "smoke": bool(arguments.smoke),
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("planes bit-identical on every tier; RSS targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
