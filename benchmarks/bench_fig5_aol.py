"""Figure 5 — AOL, k ∈ {100, 200}: the λ ≈ k singleton-dominated regime.

Paper shape to reproduce:

* this is TF's best case ("the dataset where TF performs closest to
  PB") because m = 1 degenerates TF into frequent-singleton mining,
  which covers most of the top-k here;
* both methods reach small FNR at ε = 1; the PB-over-TF gap is small
  but PB is never worse by a margin;
* the paper's ε grid starts at 0.5 (both methods need the larger
  budget on this sparse dataset).
"""

from __future__ import annotations

from conftest import final_point, mean_over_grid, run_once, series_by_label

from repro.experiments.figures import run_figure


def bench_fig5_aol(benchmark, root_seed):
    result = run_once(benchmark, run_figure, "fig5", seed=root_seed)
    print()
    print(result.render())

    pb100 = series_by_label(result, "PB, k = 100")[0]
    pb200 = series_by_label(result, "PB, k = 200")[0]
    tf100 = series_by_label(result, "TF, k = 100")[0]
    tf200 = series_by_label(result, "TF, k = 200")[0]

    # Both methods are usable here (paper y-axis caps at 0.5).
    for series in (pb100, pb200, tf100, tf200):
        assert final_point(series, "fnr") <= 0.5

    # The gap narrows but PB never loses by a margin.
    for pb, tf in ((pb100, tf100), (pb200, tf200)):
        assert (
            mean_over_grid(pb, "fnr")
            <= mean_over_grid(tf, "fnr") + 0.05
        )

    # PB FNR at full budget is small (paper: ≈ 0.05–0.1).
    assert final_point(pb100, "fnr") <= 0.2
    assert final_point(pb200, "fnr") <= 0.2
