"""Scalability — the paper's running-time analysis (Section 4.2).

The paper: Algorithm 1 runs in ``O(w·|D| + w·3^ℓ)``; "w is a linear
factor on the running time, while ℓ has an exponential effect. In our
experiments we limit ℓ to be at most 12."  (Our reconstruction uses
the zeta transform, ``O(ℓ·2^ℓ)`` per basis instead of ``3^ℓ`` — the
same exponential character with a smaller base.)

Measured here:

* runtime vs basis length ℓ at fixed data size — must grow
  super-linearly once the ``2^ℓ`` term dominates the scan;
* runtime vs dataset size N at fixed ℓ — the counting kernel is
  vectorized numpy over per-item tid-lists, so at laptop scale the
  scan is *negligible* next to the per-basis transform: runtime must
  stay nearly flat in N (the paper's ``w·|D|`` term has a far larger
  constant in the authors' per-transaction loop);
* runtime vs width w at fixed ℓ and N — near-linear (w more scans
  and transforms).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once

from repro.core.basis import BasisSet
from repro.core.basis_freq import basis_freq
from repro.datasets.synthetic import QuestConfig, generate_quest

EPSILON = 1.0


def _database(num_transactions, num_items=40):
    config = QuestConfig(
        num_transactions=num_transactions,
        num_items=num_items,
        avg_transaction_length=8.0,
    )
    return generate_quest(config, rng=13)


def _time(function, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def bench_scalability(benchmark):
    def measure():
        results = {}

        # (a) vs basis length at N = 2000.
        database = _database(2000)
        by_length = {}
        for length in (4, 8, 12, 14):
            basis_set = BasisSet([tuple(range(length))])
            by_length[length] = _time(
                lambda basis_set=basis_set: basis_freq(
                    database, basis_set, 10, EPSILON, rng=0
                )
            )
        results["length"] = by_length

        # (b) vs N at ℓ = 8.
        basis_set = BasisSet([tuple(range(8))])
        by_n = {}
        for n in (1000, 4000, 16000):
            db = _database(n)
            by_n[n] = _time(
                lambda db=db: basis_freq(db, basis_set, 10, EPSILON,
                                         rng=0)
            )
        results["transactions"] = by_n

        # (c) vs width at ℓ = 6, N = 2000 (disjoint bases).
        database = _database(2000, num_items=60)
        by_width = {}
        for width in (1, 4, 8):
            bases = [
                tuple(range(start * 6, start * 6 + 6))
                for start in range(width)
            ]
            basis_set = BasisSet(bases)
            by_width[width] = _time(
                lambda basis_set=basis_set: basis_freq(
                    database, basis_set, 10, EPSILON, rng=0
                )
            )
        results["width"] = by_width
        return results

    results = run_once(benchmark, measure)

    print()
    print("scalability of BasisFreq (best-of-3 wall time, seconds)")
    for axis, series in results.items():
        rendered = "  ".join(
            f"{key}: {value * 1000:.1f}ms" for key, value in series.items()
        )
        print(f"  vs {axis:<13} {rendered}")

    by_length = results["length"]
    by_n = results["transactions"]
    by_width = results["width"]

    # (a) the exponential term: from l = 12 to 14 the bin/transform
    # work quadruples; the total must grow clearly super-linearly in
    # that range (scan time is constant across l here).
    assert by_length[14] > 2.0 * by_length[12]

    # (b) the vectorized scan keeps N-scaling tame: 16x data costs at
    # most ~8x time at this scale (in practice it is nearly flat).
    ratio = by_n[16000] / by_n[1000]
    assert ratio <= 8.0

    # (c) near-linear in width: 8 bases cost no more than ~16x one
    # basis and at least 2x.
    ratio = by_width[8] / by_width[1]
    assert 2.0 <= ratio <= 16.0
