"""Figure 2 — Pumsb-star, k ∈ {50, 150}: small-λ regime, deep itemsets.

Paper shape to reproduce:

* PB FNR close to 0 for ε ≥ 0.5, RE below a few percent (the paper's
  panel (b) y-axis tops out at 0.1);
* TF FNR > 0.7 at k = 150 even at ε = 1;
* TF FNR ≈ 0.4 at k = 50, ε = 0.5.
"""

from __future__ import annotations

from conftest import final_point, run_once, series_by_label

from repro.experiments.figures import run_figure


def bench_fig2_pumsb_star(benchmark, root_seed):
    result = run_once(benchmark, run_figure, "fig2", seed=root_seed)
    print()
    print(result.render())

    pb50 = series_by_label(result, "PB, k = 50")[0]
    pb150 = series_by_label(result, "PB, k = 150")[0]
    tf50 = series_by_label(result, "TF, k = 50")[0]
    tf150 = series_by_label(result, "TF, k = 150")[0]

    assert final_point(pb50, "fnr") <= 0.10
    assert final_point(pb150, "fnr") <= 0.15

    # TF collapses at the larger k (paper: FNR > 0.7 at ε = 1).
    assert final_point(tf150, "fnr") >= 0.5

    # PB at k = 150 still beats TF at k = 50.
    assert final_point(pb150, "fnr") < final_point(tf50, "fnr") + 0.05

    # Pumsb-star is dense: PB's relative error is tiny (paper < 0.02).
    assert max(pb50.re_mean) <= 0.05
    assert max(pb150.re_mean) <= 0.05
