"""Counting-plane benchmark: threads vs processes × worker counts.

Sweeps :class:`~repro.engine.sharded.ShardedBackend` execution modes
over the stage-shaped query mix of one PrivBasis release — a pairwise
sweep over a λ-pool (SelectPairs), a batch of ``2^ℓ`` bin histograms
(BasisFreq), and a batch of conjunction supports (the TF measurement
phase) — on a kosarak-shaped synthetic database.  Every configuration
must answer **bit-identically** to the single-process
:class:`~repro.engine.bitmap.BitmapBackend` reference (asserted), and
per-kind medians land in ``BENCH_counting.json`` together with the
machine's ``cpu_count`` so a reader can judge the speedups against
the cores that were actually available.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke   # CI

``--smoke`` shrinks the data and rounds so CI exercises the full
publish/dispatch/merge path — including the equivalence assert — in a
few seconds on every push.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.engine import BitmapBackend, ShardedBackend

CONFIG = QuestConfig(
    num_transactions=120_000,
    num_items=400,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=60,
)
SHARD_SIZE, ROUNDS = 16_384, 3

SMOKE_CONFIG = QuestConfig(
    num_transactions=3_000,
    num_items=80,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=20,
)
SMOKE_SHARD_SIZE, SMOKE_ROUNDS = 512, 1

#: The stage-shaped query mix (sizes follow the paper's regimes:
#: λ-pools of ~λ items, bases of length ≤ 8, k-sized measure batches).
POOL_SIZE = 20
NUM_BASES, BASIS_LENGTH = 6, 7
NUM_CONJUNCTIONS = 60


def make_queries(num_items: int, rng: np.random.Generator):
    pool = sorted(
        int(item)
        for item in rng.choice(num_items, size=POOL_SIZE, replace=False)
    )
    bases = [
        [
            int(item)
            for item in rng.choice(
                num_items, size=BASIS_LENGTH, replace=False
            )
        ]
        for _ in range(NUM_BASES)
    ]
    itemsets = [
        tuple(
            sorted(
                int(item)
                for item in rng.choice(num_items, size=size,
                                       replace=False)
            )
        )
        for size in rng.integers(1, 4, size=NUM_CONJUNCTIONS)
    ]
    return pool, bases, itemsets


def run_queries(backend, pool, bases, itemsets) -> Dict[str, object]:
    """One release's worth of counting, timed per stage."""
    timings: Dict[str, float] = {}
    started = time.perf_counter()
    pairs = backend.pairwise_supports(pool)
    timings["pairwise_supports_s"] = time.perf_counter() - started
    started = time.perf_counter()
    bins = backend.bin_counts_batch(bases)
    timings["bin_counts_batch_s"] = time.perf_counter() - started
    started = time.perf_counter()
    conjunctions = backend.conjunction_supports(itemsets)
    timings["conjunction_supports_s"] = time.perf_counter() - started
    return {
        "timings": timings,
        "answers": (pairs, bins, conjunctions),
    }


def assert_equivalent(reference, candidate, label: str) -> None:
    ref_pairs, ref_bins, ref_conjunctions = reference
    pairs, bins, conjunctions = candidate
    assert pairs == ref_pairs, f"{label}: pairwise supports diverged"
    for got, want in zip(bins, ref_bins):
        np.testing.assert_array_equal(
            got, want, err_msg=f"{label}: bin counts diverged"
        )
    assert conjunctions == ref_conjunctions, (
        f"{label}: conjunction supports diverged"
    )


def sweep_configurations(cpu_count: int) -> List[Dict[str, object]]:
    worker_grid = sorted({1, 2, cpu_count})
    configurations: List[Dict[str, object]] = []
    for mode in ("threads", "processes"):
        for workers in worker_grid:
            configurations.append({"mode": mode, "workers": workers})
    return configurations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small data, one round (CI equivalence + path check)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="JSON output path (default: BENCH_counting.json next to "
             "the repo root)",
    )
    arguments = parser.parse_args(argv)

    config = SMOKE_CONFIG if arguments.smoke else CONFIG
    shard_size = SMOKE_SHARD_SIZE if arguments.smoke else SHARD_SIZE
    rounds = SMOKE_ROUNDS if arguments.smoke else ROUNDS
    cpu_count = os.cpu_count() or 1

    database = generate_quest(config, rng=20120827)
    rng = np.random.default_rng(42)
    pool, bases, itemsets = make_queries(database.num_items, rng)
    print(
        f"== counting plane: N={database.num_transactions}, "
        f"|I|={database.num_items}, shard_size={shard_size}, "
        f"cpu_count={cpu_count} =="
    )

    reference = run_queries(
        BitmapBackend(database), pool, bases, itemsets
    )
    results: List[Dict[str, object]] = []
    for configuration in sweep_configurations(cpu_count):
        mode, workers = configuration["mode"], configuration["workers"]
        backend = ShardedBackend(
            database,
            shard_size=shard_size,
            max_workers=workers,
            mode=mode,
        )
        try:
            per_round: List[Dict[str, float]] = []
            answers = None
            for _ in range(rounds):
                outcome = run_queries(backend, pool, bases, itemsets)
                per_round.append(outcome["timings"])
                answers = outcome["answers"]
            assert_equivalent(
                reference["answers"], answers,
                f"{mode}/{workers}w",
            )
            medians = {
                kind: statistics.median(
                    entry[kind] for entry in per_round
                )
                for kind in per_round[0]
            }
            total = sum(medians.values())
            record = {
                "mode": mode,
                "effective_mode": backend.effective_mode,
                "workers": workers,
                "num_shards": backend.num_shards,
                "total_s": round(total, 6),
                **{kind: round(value, 6)
                   for kind, value in medians.items()},
            }
            results.append(record)
            print(
                f"{mode:<10} workers={workers:<3} "
                f"(ran as {backend.effective_mode:<9}) "
                f"total {total * 1e3:9.2f} ms   "
                f"pairs {medians['pairwise_supports_s'] * 1e3:8.2f}  "
                f"bins {medians['bin_counts_batch_s'] * 1e3:8.2f}  "
                f"conj {medians['conjunction_supports_s'] * 1e3:8.2f}"
            )
        finally:
            backend.close()

    best = {
        mode: min(
            (entry for entry in results if entry["mode"] == mode),
            key=lambda entry: entry["total_s"],
        )
        for mode in ("threads", "processes")
    }
    speedup = best["threads"]["total_s"] / best["processes"]["total_s"]
    payload = {
        "benchmark": "bench_parallel",
        "cpu_count": cpu_count,
        "smoke": arguments.smoke,
        "config": {
            "num_transactions": database.num_transactions,
            "num_items": database.num_items,
            "shard_size": shard_size,
            "rounds": rounds,
            "pool_size": POOL_SIZE,
            "num_bases": NUM_BASES,
            "basis_length": BASIS_LENGTH,
            "num_conjunctions": NUM_CONJUNCTIONS,
        },
        "results": results,
        "best_processes_over_threads": round(speedup, 3),
    }
    output = Path(
        arguments.output
        if arguments.output
        else Path(__file__).resolve().parent.parent
        / "BENCH_counting.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"best processes vs best threads: {speedup:.2f}x "
        f"(on {cpu_count} cores) -> {output}"
    )
    print(
        "equivalence ok: every mode/worker configuration matched the "
        "bitmap reference bit-for-bit"
        + ("  (smoke)" if arguments.smoke else "")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
