"""Ablation — basis length ℓ for singleton queries (paper Section 4.2).

The paper's closed-form analysis: querying k items via bases of size ℓ
gives per-item error variance ``(2^{ℓ−1}/ℓ²)·k²·V``, minimized at
ℓ = 3 (4/9 of the one-basis-per-item strawman).  This bench

1. prints the analytic curve for ℓ = 1 … 8, and
2. verifies it *empirically*: fixed k items split into size-ℓ bases,
   noisy counts drawn via BasisFreq, per-item squared error averaged
   over repeated trials — the measured variance ratios must track the
   analytic ``2^{ℓ−1}/ℓ²`` shape and dip at ℓ = 3.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.core.basis import BasisSet
from repro.core.basis_freq import noisy_bin_counts
from repro.core.error_variance import singleton_grouping_ev
from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.fim.counting import bin_counts_for_items, superset_sum_transform

GROUP_SIZES = (1, 2, 3, 4, 5, 6, 7, 8)
NUM_ITEMS = 24          # divisible by every tested ℓ except 5, 7
EPSILON = 0.5
TRIALS = 120


def _bases_of_size(items, size):
    return BasisSet(
        [tuple(items[start:start + size])
         for start in range(0, len(items), size)]
    )


def _empirical_item_variance(database, group_size, rng):
    """Mean squared error of singleton counts under size-ℓ bases."""
    items = list(range(NUM_ITEMS))
    basis_set = _bases_of_size(items, group_size)
    exact = {
        item: float(database.support((item,))) for item in items
    }
    squared_error = 0.0
    samples = 0
    for _ in range(TRIALS):
        noisy = noisy_bin_counts(database, basis_set, EPSILON, rng=rng)
        for basis, bins in zip(basis_set.bases, noisy):
            sums = superset_sum_transform(np.asarray(bins, dtype=float))
            for position, item in enumerate(basis):
                estimate = sums[1 << position]
                squared_error += (estimate - exact[item]) ** 2
                samples += 1
    return squared_error / samples


def bench_ablation_basis_length(benchmark):
    config = QuestConfig(
        num_transactions=400,
        num_items=NUM_ITEMS,
        avg_transaction_length=6.0,
    )
    database = generate_quest(config, rng=99)
    rng = np.random.default_rng(7)

    def measure():
        return {
            size: _empirical_item_variance(database, size, rng)
            for size in GROUP_SIZES
        }

    measured = run_once(benchmark, measure)
    analytic = {
        size: singleton_grouping_ev(size, NUM_ITEMS)
        for size in GROUP_SIZES
    }

    print()
    print("ablation: basis length for k singleton queries "
          f"(k = {NUM_ITEMS}, eps = {EPSILON}, {TRIALS} trials)")
    print("ell  analytic 2^(l-1)/l^2  measured var (count^2)  measured/l=1")
    base = measured[1]
    for size in GROUP_SIZES:
        print(
            f"{size:<4} {analytic[size]:<21.4f} "
            f"{measured[size]:<23.1f} {measured[size] / base:.3f}"
        )

    # The analytic curve is minimized at 3 (paper: "minimized at l=3").
    assert min(analytic, key=analytic.get) == 3

    # Empirically: l=3 beats the direct method by roughly 4/9 and is
    # the measured minimum up to sampling noise (allow l=2/l=4 ties
    # within 15%).
    assert measured[3] < 0.62 * measured[1]
    floor = min(measured.values())
    assert measured[3] <= floor * 1.15

    # The exponential blow-up dominates for long bases.
    assert measured[8] > measured[3] * 4
