"""Reuse-plane benchmark: warm (reuse-served) vs cold releases.

The cross-release reuse plane (:mod:`repro.pipeline.reuse`) answers a
``(k', ε')`` request by post-processing a stored ``(k, ε)`` release
whenever ``k' ≤ k`` and ``ε' ≤ ε`` — truncate to the top ``k'``
itemsets, re-rank, never re-touch the data, and charge exactly ε = 0.
This benchmark prices that plane in the only two currencies that
matter:

* **latency** — a reuse hit is a sort + slice of an already-released
  payload, so a warm request should beat a cold Algorithm 1 run by a
  wide margin (the acceptance bar asserts ≥ 5x);
* **epsilon** — every warm request must debit exactly 0 from the
  ledger while the cold comparison pays the full planned ε.

Both legs answer the *same* ``(k', ε')`` request: one session has the
reuse plane on and holds a dominating stored release, the other runs
each request fresh.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_reuse.py
    PYTHONPATH=src python benchmarks/bench_reuse.py --smoke   # CI

``--smoke`` shrinks the workload and skips the speedup floor (CI
machines are noisy) but still asserts the soundness half: every warm
request is a hit, charges ε = 0, and matches the stored payload's
truncation bit for bit.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.engine.session import PrivBasisSession
from repro.pipeline.reuse import top_k_truncate

#: The stored release every warm request is served from.
STORED_K, STORED_EPSILON = 100, 1.0
#: The (strictly dominated) request both legs answer.
WARM_K, WARM_EPSILON = 50, 0.5

CONFIG = QuestConfig(
    num_transactions=20_000,
    num_items=120,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=30,
)
SMOKE_CONFIG = QuestConfig(
    num_transactions=1_500,
    num_items=50,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=15,
)
REQUESTS, SMOKE_REQUESTS = 25, 3
#: Acceptance floor for the full run: warm must beat cold by this.
SPEEDUP_FLOOR = 5.0


def run_benchmark(smoke: bool) -> Dict[str, object]:
    """Time warm (reuse-served) vs cold releases of one request."""
    database = generate_quest(SMOKE_CONFIG if smoke else CONFIG, rng=7)
    requests = SMOKE_REQUESTS if smoke else REQUESTS

    warm_session = PrivBasisSession(database, reuse=True)
    stored = warm_session.release(k=STORED_K, epsilon=STORED_EPSILON)
    assert getattr(stored, "reuse", None) is None
    spent_after_store = warm_session.epsilon_spent

    warm: List[float] = []
    for _ in range(requests):
        started = time.perf_counter()
        result = warm_session.release(k=WARM_K, epsilon=WARM_EPSILON)
        warm.append(time.perf_counter() - started)
        reuse = getattr(result, "reuse", None)
        assert reuse is not None and reuse["hit"], (
            "warm request missed the reuse plane"
        )
        assert reuse["epsilon_charged"] == 0.0
    # Soundness spot-checks beyond timing: the ledger never moved, and
    # the served payload is exactly the stored release truncated.
    assert warm_session.epsilon_spent == spent_after_store, (
        "reuse hits debited the ledger"
    )
    assert warm_session.reuse_hits == requests
    truncated = top_k_truncate(
        {
            "k": stored.k,
            "epsilon": stored.epsilon,
            "snapshot_version": stored.snapshot_version,
            "itemsets": [
                {
                    "items": list(entry.itemset),
                    "noisy_count": entry.noisy_count,
                    "noisy_frequency": entry.noisy_frequency,
                }
                for entry in stored.itemsets
            ],
        },
        WARM_K,
        WARM_EPSILON,
    )
    served = warm_session.release(k=WARM_K, epsilon=WARM_EPSILON)
    assert [list(e.itemset) for e in served.itemsets] == [
        entry["items"] for entry in truncated["itemsets"]
    ], "reuse answer diverged from top_k_truncate of the stored release"

    cold_session = PrivBasisSession(database)
    cold: List[float] = []
    for _ in range(requests):
        started = time.perf_counter()
        result = cold_session.release(k=WARM_K, epsilon=WARM_EPSILON)
        cold.append(time.perf_counter() - started)
        assert getattr(result, "reuse", None) is None

    warm_s = statistics.median(warm)
    cold_s = statistics.median(cold)
    return {
        "num_transactions": database.num_transactions,
        "num_items": database.num_items,
        "stored": {"k": STORED_K, "epsilon": STORED_EPSILON},
        "request": {"k": WARM_K, "epsilon": WARM_EPSILON},
        "requests": requests,
        "warm_median_s": warm_s,
        "cold_median_s": cold_s,
        "speedup": cold_s / warm_s,
        "warm_epsilon_charged": 0.0,
        "warm_epsilon_saved": requests * WARM_EPSILON,
        "cold_epsilon_charged": cold_session.epsilon_spent,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; asserts hit-path ε=0, skips the speedup "
        "floor (CI)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="JSON output path (default: BENCH_reuse.json next to "
        "the repo root; not written in --smoke mode)",
    )
    arguments = parser.parse_args(argv)
    numbers = run_benchmark(arguments.smoke)

    print(
        f"== reuse plane over N={numbers['num_transactions']} "
        f"(stored k={STORED_K} eps={STORED_EPSILON}, "
        f"request k={WARM_K} eps={WARM_EPSILON}) =="
    )
    print(f"warm (reuse hit):  {numbers['warm_median_s'] * 1e3:9.3f} ms")
    print(f"cold (fresh run):  {numbers['cold_median_s'] * 1e3:9.3f} ms")
    print(
        f"speedup:           {numbers['speedup']:9.1f}x at "
        f"eps_charged={numbers['warm_epsilon_charged']} "
        f"(saved {numbers['warm_epsilon_saved']:.2f} eps over "
        f"{numbers['requests']} requests; cold leg paid "
        f"{numbers['cold_epsilon_charged']:.2f})"
    )
    if arguments.smoke:
        print("smoke ok: every warm request hit at eps=0")
        return 0

    assert numbers["speedup"] >= SPEEDUP_FLOOR, (
        f"reuse speedup {numbers['speedup']:.1f}x is below the "
        f"{SPEEDUP_FLOOR}x acceptance floor"
    )
    output = Path(
        arguments.output
        or Path(__file__).resolve().parent.parent / "BENCH_reuse.json"
    )
    output.write_text(
        json.dumps(
            {
                "benchmark": "reuse",
                "smoke": False,
                "results": numbers,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
