"""Figure 1 — Mushroom, k ∈ {50, 100}: the small-λ / single-basis regime.

Paper shape to reproduce:

* PB FNR close to 0 for ε ≥ 0.5 at both k;
* TF FNR > 0.6 at k = 100 even at ε = 1;
* TF FNR ≈ 0.6 at k = 50, ε = 0.5;
* PB relative error consistently small;
* PB at the *larger* k beats TF at the smaller k.
"""

from __future__ import annotations

from conftest import final_point, run_once, series_by_label

from repro.experiments.figures import run_figure


def bench_fig1_mushroom(benchmark, root_seed):
    result = run_once(benchmark, run_figure, "fig1", seed=root_seed)
    print()
    print(result.render())

    pb50, pb100 = series_by_label(result, "PB, k = 50") + series_by_label(
        result, "PB, k = 100"
    )
    tf50, tf100 = series_by_label(result, "TF, k = 50") + series_by_label(
        result, "TF, k = 100"
    )

    # PB is near-exact at the top of the ε grid.
    assert final_point(pb50, "fnr") <= 0.10
    assert final_point(pb100, "fnr") <= 0.10

    # TF at k = 100 stays badly wrong even at ε = 1 (paper: > 0.6).
    assert final_point(tf100, "fnr") >= 0.45

    # PB with larger k beats TF with smaller k (the paper's headline).
    assert final_point(pb100, "fnr") < final_point(tf50, "fnr") + 0.05

    # PB's RE stays small across the grid (paper panel (b): < 0.05).
    assert max(pb50.re_mean) <= 0.10
    assert max(pb100.re_mean) <= 0.10

    # PB dominates TF pointwise in FNR on the shared grid.
    for pb, tf in ((pb50, tf50), (pb100, tf100)):
        for index in range(len(pb.epsilons)):
            assert pb.fnr_mean[index] <= tf.fnr_mean[index] + 0.05
