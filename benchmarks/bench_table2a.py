"""Table 2(a) — dataset parameters.

Regenerates, for all five datasets, the columns the paper reports: N,
|I|, average transaction length, and the top-k composition (λ unique
items, λ₂ pairs, λ₃ triples).  The shape check asserts the properties
the paper's narrative depends on:

* mushroom / pumsb-star have small λ (single-basis regime);
* retail / kosarak have a few dozen unique items (multi-basis regime);
* aol is singleton-dominated (λ ≈ k, λ₃ = 0).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_table2a, table2a


def bench_table2a(benchmark):
    rows = run_once(benchmark, table2a)
    print()
    print(render_table2a(rows))

    stats = {row.name: row for row in rows}
    assert set(stats) == {
        "retail", "mushroom", "pumsb_star", "kosarak", "aol",
    }

    # Small-λ regime: both single-basis datasets fit in one basis of
    # at most a dozen items (paper: λ = 11 and 17).
    assert stats["mushroom"].lam <= 12
    assert stats["pumsb_star"].lam <= 20

    # Multi-basis regime: a few dozen unique items (paper: 38, 39).
    assert 20 <= stats["retail"].lam <= 60
    assert 20 <= stats["kosarak"].lam <= 60

    # Singleton-dominated regime (paper: λ = 171 of k = 200, λ₃ = 0).
    assert stats["aol"].lam >= 0.8 * stats["aol"].k
    assert stats["aol"].lam3 == 0

    # Deep itemsets exist where the paper says they do.
    assert stats["mushroom"].lam3 > 0
    assert stats["pumsb_star"].lam3 > 0
