"""Related-work reproduction — DiffPart (Chen et al. 2011) on the
paper's datasets vs its home turf.

The PrivBasis paper (Section 6): "For the datasets we consider in
this paper, this method generates either an empty synthetic dataset
or a dataset that is highly inaccurate … reasonable performance only
when the number of items is small. (One dataset used [by Chen et al.]
is the MSNBC dataset which has 17 items and about 1 million
transactions.)"

This bench reproduces that analysis quantitatively:

* on an MSNBC-like dataset (17 items, short repetitive transactions)
  DiffPart retains most of the data and nails the top-k;
* on mushroom (119 items, long distinct transactions) and retail
  (16 470 items) the synthetic output is empty or nearly so, and the
  mined top-k is useless — while PrivBasis on the same budget is
  near-exact.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.baselines.dpsynth import dpsynth_release, dpsynth_top_k
from repro.core.privbasis import privbasis
from repro.datasets.registry import cached_top_k, load_dataset
from repro.datasets.transactions import TransactionDatabase
from repro.fim.topk import exact_topk_itemset_set

EPSILON = 1.0
K = 50


def _msnbc_like(num_transactions=100_000, num_items=17, seed=7):
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, num_items + 1) ** 1.2
    popularity /= popularity.sum()
    rows = []
    for _ in range(num_transactions):
        size = min(num_items, 1 + rng.geometric(0.45))
        rows.append(
            tuple(
                np.sort(
                    rng.choice(
                        num_items, size=size, replace=False, p=popularity
                    )
                )
            )
        )
    return TransactionDatabase(rows, num_items=num_items)


def _evaluate(database, label):
    exact = exact_topk_itemset_set(database, K)
    synthetic = dpsynth_release(database, EPSILON, rng=0)
    mined = dpsynth_top_k(database, K, EPSILON, rng=0)
    hits = sum(1 for itemset, _ in mined if itemset in exact)

    pb = privbasis(database, k=K, epsilon=EPSILON, rng=0)
    pb_hits = sum(
        1 for entry in pb.itemsets if entry.itemset in exact
    )
    return {
        "label": label,
        "num_items": database.num_items,
        "synthetic_n": synthetic.num_transactions,
        "original_n": database.num_transactions,
        "dpsynth_hits": hits,
        "pb_hits": pb_hits,
    }


def bench_dpsynth(benchmark):
    def measure():
        rows = [_evaluate(_msnbc_like(), "msnbc-like")]
        for name in ("mushroom", "retail"):
            rows.append(_evaluate(load_dataset(name), name))
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        f"DiffPart (Chen et al.) vs PrivBasis "
        f"(k = {K}, eps = {EPSILON})"
    )
    print(
        f"{'dataset':<12} {'|I|':>7} {'synthetic N':>12} "
        f"{'DiffPart hits':>14} {'PB hits':>8}"
    )
    for row in rows:
        synthetic = (
            f"{row['synthetic_n']}/{row['original_n']}"
        )
        print(
            f"{row['label']:<12} {row['num_items']:>7} "
            f"{synthetic:>12} {row['dpsynth_hits']:>11}/{K} "
            f"{row['pb_hits']:>5}/{K}"
        )

    by_label = {row["label"]: row for row in rows}

    # DiffPart's home turf: small vocabulary → works well.
    msnbc = by_label["msnbc-like"]
    assert msnbc["synthetic_n"] > 0.5 * msnbc["original_n"]
    assert msnbc["dpsynth_hits"] >= int(0.7 * K)

    # The paper's datasets: empty or highly inaccurate, exactly as
    # Section 6 claims — while PrivBasis stays near-exact.
    for name in ("mushroom", "retail"):
        row = by_label[name]
        assert row["synthetic_n"] <= 0.05 * row["original_n"]
        assert row["dpsynth_hits"] <= int(0.2 * K)
        assert row["pb_hits"] >= int(0.8 * K)
