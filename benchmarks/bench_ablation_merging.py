"""Ablation — Algorithm 2's greedy EV merge/dissolve phases.

ConstructBasisSet first builds raw maximal cliques plus leftover
triples and then greedily merges/dissolves bases to reduce the
average-case error variance.  This bench runs PrivBasis on the retail
dataset (multi-basis regime) with the greedy phases on and off and
compares:

* the basis-set geometry (width w, length ℓ, analytic average EV);
* end-to-end utility (FNR, RE).

The greedy phases shrink w (whose square multiplies every bin
variance), so the optimized basis set must have an analytic EV no
worse than the raw one, and end-to-end utility should not regress.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.error_variance import average_case_ev
from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials

K = 100
EPSILON = 0.5
TRIALS = 5


def bench_ablation_merging(benchmark, root_seed):
    database = load_dataset("retail")

    def measure():
        results = {}
        for label, greedy in (("greedy", True), ("raw", False)):
            fnrs, res = run_trials(
                database,
                pb_spec(K, greedy_basis_optimization=greedy),
                K,
                EPSILON,
                trials=TRIALS,
                seed=root_seed,
            )
            results[label] = (
                sum(fnrs) / len(fnrs),
                sum(res) / len(res),
            )
        return results

    results = run_once(benchmark, measure)

    # Geometry comparison on one deterministic release of each kind.
    from repro.core.privbasis import privbasis

    greedy_release = privbasis(
        database, k=K, epsilon=EPSILON, rng=root_seed
    )
    raw_release = privbasis(
        database,
        k=K,
        epsilon=EPSILON,
        greedy_basis_optimization=False,
        rng=root_seed,
    )

    def geometry(release):
        basis_set = release.basis_set
        queries = [(item,) for item in release.frequent_items] + list(
            release.frequent_pairs
        )
        return (
            basis_set.width,
            basis_set.length,
            average_case_ev(basis_set.bases, queries),
        )

    greedy_geo = geometry(greedy_release)
    raw_geo = geometry(raw_release)

    print()
    print(f"ablation: Algorithm 2 greedy phases on retail "
          f"(k = {K}, eps = {EPSILON}, {TRIALS} trials)")
    print("variant  width  length  analytic-EV  FNR     RE")
    for label, geo in (("greedy", greedy_geo), ("raw", raw_geo)):
        fnr, re = results[label]
        print(
            f"{label:<8} {geo[0]:<6} {geo[1]:<7} {geo[2]:<12.2f} "
            f"{fnr:<7.3f} {re:.4f}"
        )

    # Same seed → the private selections (λ, F, P) are identical, so
    # the analytic EV comparison isolates Algorithm 2 lines 4-5.
    assert greedy_release.frequent_items == raw_release.frequent_items

    # Greedy optimization never makes the analytic objective worse.
    assert greedy_geo[2] <= raw_geo[2] + 1e-9

    # It shrinks (or preserves) the width.
    assert greedy_geo[0] <= raw_geo[0]

    # End-to-end utility must not collapse in either variant, and the
    # greedy variant is at least comparable (generous tolerance: one
    # seed, modest trials).
    assert results["greedy"][0] <= results["raw"][0] + 0.15
