"""Figure 4 — Kosarak, k ∈ {100, 200, 300, 400}: PB's scalability in k.

Paper shape to reproduce (2×2 panel grid):

* PB stays accurate out to k = 400 ("the performance of PB is
  accurate even when k = 400");
* TF "has acceptable FNR only for k = 100 and ε ≥ 0.5";
* PB FNR degrades gracefully and monotonically-ish with k, TF
  collapses rapidly.
"""

from __future__ import annotations

from conftest import final_point, run_once, series_by_label

from repro.experiments.figures import run_figure


def bench_fig4_kosarak(benchmark, root_seed):
    result = run_once(benchmark, run_figure, "fig4", seed=root_seed)
    print()
    print(result.render())

    pb = {
        k: series_by_label(result, f"PB, k = {k}")[0]
        for k in (100, 200, 300, 400)
    }
    tf = {
        k: series_by_label(result, f"TF, k = {k}")[0]
        for k in (100, 200, 300, 400)
    }

    # PB usable at every k at full budget (paper: FNR well under 0.2).
    for k in (100, 200, 300, 400):
        assert final_point(pb[k], "fnr") <= 0.25, f"PB k={k}"

    # TF unusable beyond k = 100 even at full budget.
    for k in (200, 300, 400):
        assert final_point(tf[k], "fnr") >= 0.4, f"TF k={k}"

    # PB at k = 400 still beats TF at k = 100 at the grid top.
    assert final_point(pb[400], "fnr") <= final_point(tf[100], "fnr") + 0.05

    # Graceful degradation: PB's ε=1 FNR grows by bounded steps in k.
    finals = [final_point(pb[k], "fnr") for k in (100, 200, 300, 400)]
    assert finals[-1] <= finals[0] + 0.25
