"""Ablation — the single-basis rule (paper Section 4.4, "λ ≤ 12").

When λ is at most a dozen, PrivBasis skips the frequent-pairs step
and uses one basis containing all λ items (Proposition 2).  This
bench forces the multi-basis path at decreasing λ-thresholds to
measure what the rule buys.

Measured finding (documented in EXPERIMENTS.md): on dense data the
two paths are a utility *wash* — the λ items are so correlated that
the selected pairs form a near-complete graph, whose maximal cliques
greedily merge back into one or two long bases covering nearly the
same candidate set.  The λ ≤ 12 rule is therefore primarily a budget
and simplicity optimization (no pairs step: all of α₂ε goes to item
selection; no clique machinery), not a utility cliff — consistent
with the paper presenting it as a default, not a tuned choice.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.registry import load_dataset
from repro.experiments.runner import pb_spec, run_trials

#: single_basis_lambda values: 12 is the paper's rule (single basis
#: here, since λ ≈ 9–11 on mushroom); smaller values force the
#: pairs/cliques machinery.
THRESHOLDS = (12, 8, 4, 2)

K = 100
EPSILON = 0.5
TRIALS = 6


def bench_ablation_single_basis(benchmark, root_seed):
    database = load_dataset("mushroom")

    def measure():
        rows = []
        for threshold in THRESHOLDS:
            fnrs, res = run_trials(
                database,
                pb_spec(K, single_basis_lambda=threshold),
                K,
                EPSILON,
                trials=TRIALS,
                seed=root_seed,
            )
            rows.append(
                (threshold, sum(fnrs) / len(fnrs), sum(res) / len(res))
            )
        return rows

    rows = run_once(benchmark, measure)

    print()
    print(
        f"ablation: single-basis threshold on mushroom "
        f"(k = {K}, eps = {EPSILON}, {TRIALS} trials; lambda ~ 9-11)"
    )
    print("threshold  path          FNR     RE")
    for threshold, fnr, re in rows:
        path = "single basis" if threshold >= 9 else "multi basis"
        print(f"{threshold:<10} {path:<13} {fnr:<7.3f} {re:.4f}")

    by_threshold = {t: fnr for t, fnr, _ in rows}

    # The two paths are equivalent in utility on dense data (the
    # forced multi-basis cliques converge to near-identical coverage);
    # neither may be meaningfully worse.
    assert abs(by_threshold[12] - by_threshold[2]) <= 0.05
    assert abs(by_threshold[12] - by_threshold[4]) <= 0.05
