"""Streaming benchmark: incremental append vs cold rebuild.

A live feed delivers transaction batches; after each batch the serving
state (database indexes, item supports, packed bitmap pools) must be
brought current before the next release.  Two strategies compete:

* **incremental** — ``CountingBackend.extend(delta)``: the CSR
  inverted index is merged, packed bitmap rows grow in place, tail
  shards absorb new rows, item supports are advanced by addition —
  O(Δ) work per batch;
* **cold rebuild** — what the code did before streaming existed:
  construct a fresh ``TransactionDatabase`` + backend over the full
  concatenation and rebuild every structure — O(N) work per batch.

Both strategies must produce *identical* supports (asserted against
the :class:`NaiveBackend` oracle on the final state); the benchmark
reports per-batch refresh latency and the end-to-end speedup.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke   # CI

``--smoke`` shrinks the workload so CI exercises the full
append/rebuild/equivalence path on every push in a few seconds.
"""

from __future__ import annotations

import argparse
import statistics
import time
from typing import Dict, List

import numpy as np

from repro.datasets.synthetic import QuestConfig, generate_quest
from repro.datasets.transactions import TransactionDatabase
from repro.engine import BitmapBackend, NaiveBackend, ShardedBackend

#: Item pool whose packed bitmaps every refresh keeps warm (the
#: frequent-pairs step of PrivBasis works over a pool of this size).
POOL_SIZE = 24

CONFIG = QuestConfig(
    num_transactions=60_000,
    num_items=150,
    avg_transaction_length=10.0,
    avg_pattern_length=4.0,
    num_patterns=40,
)
BATCHES, BATCH_SIZE = 8, 4_000

SMOKE_CONFIG = QuestConfig(
    num_transactions=2_000,
    num_items=60,
    avg_transaction_length=8.0,
    avg_pattern_length=4.0,
    num_patterns=20,
)
SMOKE_BATCHES, SMOKE_BATCH_SIZE = 3, 250


def make_feed(smoke: bool):
    """A base database plus a sequence of append batches."""
    config = SMOKE_CONFIG if smoke else CONFIG
    batches = SMOKE_BATCHES if smoke else BATCHES
    batch_size = SMOKE_BATCH_SIZE if smoke else BATCH_SIZE
    total = generate_quest(
        QuestConfig(
            num_transactions=config.num_transactions
            + batches * batch_size,
            num_items=config.num_items,
            avg_transaction_length=config.avg_transaction_length,
            avg_pattern_length=config.avg_pattern_length,
            num_patterns=config.num_patterns,
        ),
        rng=7,
    )
    rows = [total.transaction_array(i) for i in range(len(total))]
    base = TransactionDatabase.from_sorted_rows(
        rows[: config.num_transactions], total.num_items
    )
    deltas = [
        TransactionDatabase.from_sorted_rows(
            rows[
                config.num_transactions + index * batch_size:
                config.num_transactions + (index + 1) * batch_size
            ],
            total.num_items,
        )
        for index in range(batches)
    ]
    return base, deltas


def warm(backend, pool) -> None:
    """Build the serving state a warm backend keeps across batches."""
    backend.item_supports()
    if isinstance(backend, BitmapBackend):
        backend.bitmaps(pool)
    else:
        backend.pairwise_supports(pool)


def refresh_queries(backend, pool) -> int:
    """The post-append queries every strategy must answer."""
    supports = backend.item_supports()
    head = backend.conjunction_support(pool[:2])
    return int(supports.sum()) + head


def run_incremental(
    backend_factory, base, deltas, pool
) -> Dict[str, object]:
    """Append each batch via ``extend`` on one warm backend."""
    backend = backend_factory(base)
    warm(backend, pool)
    per_batch: List[float] = []
    checksum = 0
    for delta in deltas:
        started = time.perf_counter()
        backend.extend(delta)
        checksum = refresh_queries(backend, pool)
        per_batch.append(time.perf_counter() - started)
    return {
        "backend": backend,
        "per_batch_s": per_batch,
        "checksum": checksum,
    }


def run_cold(backend_factory, base, deltas, pool) -> Dict[str, object]:
    """Rebuild the full backend from scratch after each batch."""
    rows = [base.transaction_array(i) for i in range(len(base))]
    per_batch: List[float] = []
    checksum = 0
    backend = None
    for delta in deltas:
        rows.extend(
            delta.transaction_array(i) for i in range(len(delta))
        )
        started = time.perf_counter()
        database = TransactionDatabase.from_sorted_rows(
            list(rows), base.num_items
        )
        backend = backend_factory(database)
        warm(backend, pool)
        checksum = refresh_queries(backend, pool)
        per_batch.append(time.perf_counter() - started)
    return {
        "backend": backend,
        "per_batch_s": per_batch,
        "checksum": checksum,
    }


def check_equivalence(incremental, cold) -> None:
    """Pin incremental == cold rebuild == naive oracle supports."""
    final = incremental["backend"]
    oracle = NaiveBackend(final.database)
    np.testing.assert_array_equal(
        final.item_supports(), oracle.item_supports()
    )
    rng = np.random.default_rng(11)
    for _ in range(5):
        itemset = sorted(
            int(i)
            for i in rng.choice(final.num_items, size=3, replace=False)
        )
        expected = oracle.conjunction_support(itemset)
        assert final.conjunction_support(itemset) == expected, itemset
        assert cold["backend"].conjunction_support(itemset) == expected
    assert incremental["checksum"] == cold["checksum"]


def main(argv: List[str] | None = None) -> int:
    """Run the comparison and print per-backend speedups."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small feed only (CI equivalence + path check)",
    )
    arguments = parser.parse_args(argv)
    base, deltas = make_feed(arguments.smoke)
    pool = list(range(POOL_SIZE))
    batch_size = len(deltas[0])
    print(
        f"== streaming feed: base N={len(base)}, "
        f"{len(deltas)} batches of {batch_size} =="
    )

    factories = {
        "bitmap": lambda db: BitmapBackend(db),
        "sharded": lambda db: ShardedBackend(db, shard_size=16_384),
    }
    worst_speedup = float("inf")
    for name, factory in factories.items():
        incremental = run_incremental(factory, base, deltas, pool)
        cold = run_cold(factory, base, deltas, pool)
        check_equivalence(incremental, cold)
        inc_median = statistics.median(incremental["per_batch_s"])
        cold_median = statistics.median(cold["per_batch_s"])
        speedup = cold_median / inc_median
        worst_speedup = min(worst_speedup, speedup)
        print(
            f"{name:<8} incremental append: {inc_median * 1e3:8.2f} ms"
            f"/batch   cold rebuild: {cold_median * 1e3:8.2f} ms/batch"
            f"   speedup: {speedup:6.1f}x"
        )
    if not arguments.smoke:
        assert worst_speedup > 1.0, (
            f"incremental append lost to cold rebuild "
            f"({worst_speedup:.2f}x)"
        )
    print(
        "equivalence ok: incremental == cold rebuild == naive oracle"
        + ("  (smoke)" if arguments.smoke else "")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
